//! The [`Netlist`] container: construction, validation, rewrites and
//! structural statistics.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::area::Area;
use crate::gate::{BinOp, Node, NodeId, UnOp};
use crate::tech::TechNode;

/// Errors produced while validating or rewriting a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node references an operand with an id ≥ its own id (forward
    /// reference) or beyond the node table.
    ForwardReference {
        /// The offending node.
        node: NodeId,
        /// The referenced operand.
        operand: NodeId,
    },
    /// Two primary inputs share the same name.
    DuplicateInput {
        /// The duplicated port name.
        name: String,
    },
    /// Two primary outputs share the same name.
    DuplicateOutput {
        /// The duplicated port name.
        name: String,
    },
    /// An output refers to a node id beyond the node table.
    DanglingOutput {
        /// The output port name.
        name: String,
        /// The dangling node id.
        node: NodeId,
    },
    /// The netlist declares no outputs, so it computes nothing.
    NoOutputs,
    /// A rewrite targeted a node id that does not exist.
    UnknownNode {
        /// The missing node id.
        node: NodeId,
    },
    /// A rewrite attempted to change a primary input.
    CannotRewriteInput {
        /// The targeted input node.
        node: NodeId,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ForwardReference { node, operand } => {
                write!(f, "node {node} references non-prior node {operand}")
            }
            NetlistError::DuplicateInput { name } => {
                write!(f, "duplicate input name `{name}`")
            }
            NetlistError::DuplicateOutput { name } => {
                write!(f, "duplicate output name `{name}`")
            }
            NetlistError::DanglingOutput { name, node } => {
                write!(f, "output `{name}` references missing node {node}")
            }
            NetlistError::NoOutputs => write!(f, "netlist declares no outputs"),
            NetlistError::UnknownNode { node } => {
                write!(f, "node {node} does not exist")
            }
            NetlistError::CannotRewriteInput { node } => {
                write!(f, "primary input {node} cannot be rewritten")
            }
        }
    }
}

impl Error for NetlistError {}

/// Structural statistics of a netlist, as reported by
/// [`Netlist::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of logic gates (unary + binary).
    pub gates: usize,
    /// Number of constant nodes.
    pub constants: usize,
    /// Total static-CMOS transistor count.
    pub transistors: u64,
    /// Longest input→output path measured in gate levels.
    pub depth: usize,
}

/// A combinational gate-level netlist.
///
/// Nodes are held in topological order by construction: every factory
/// method ([`input`], [`constant`], [`unary`], [`binary`]) appends a
/// node that may only reference earlier nodes, so evaluation is a
/// single forward pass.
///
/// The rewrite methods ([`rewrite_to_const`], [`rewrite_to_buf`])
/// implement the *gate pruning* primitive of the paper: a gate is
/// replaced in place (preserving ids for all other nodes) by a constant
/// or by a feed-through of one of its former operands. Combined with
/// [`sweep`], this reduces transistor count — and therefore area and
/// embodied carbon — at the cost of functional error.
///
/// [`input`]: Netlist::input
/// [`constant`]: Netlist::constant
/// [`unary`]: Netlist::unary
/// [`binary`]: Netlist::binary
/// [`rewrite_to_const`]: Netlist::rewrite_to_const
/// [`rewrite_to_buf`]: Netlist::rewrite_to_buf
/// [`sweep`]: Netlist::sweep
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
}

impl Netlist {
    /// Creates an empty netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The netlist name (used in reports and generated libraries).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the netlist.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Appends a primary input and returns its id.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(Node::Input { name: name.into() });
        self.inputs.push(id);
        id
    }

    /// Appends a constant node and returns its id.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(Node::Const { value })
    }

    /// Appends a unary gate and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an id of an already-appended node; this is
    /// a construction-time programming error, not a data error.
    pub fn unary(&mut self, op: UnOp, a: NodeId) -> NodeId {
        assert!(
            a.index() < self.nodes.len(),
            "operand {a} must precede the new node"
        );
        self.push(Node::Unary { op, a })
    }

    /// Appends a binary gate and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is not an id of an already-appended node.
    pub fn binary(&mut self, op: BinOp, a: NodeId, b: NodeId) -> NodeId {
        assert!(
            a.index() < self.nodes.len() && b.index() < self.nodes.len(),
            "operands {a}, {b} must precede the new node"
        );
        self.push(Node::Binary { op, a, b })
    }

    /// Declares `node` as the primary output named `name`.
    pub fn output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node by id.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index())
    }

    /// Ids of the primary inputs, in declaration order.
    pub fn input_ids(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs as `(name, node)` pairs, in declaration order.
    pub fn output_ports(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic gates (excludes inputs and constants).
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_gate()).count()
    }

    /// Total static-CMOS transistor count.
    pub fn transistor_count(&self) -> u64 {
        self.nodes.iter().map(|n| u64::from(n.transistors())).sum()
    }

    /// Silicon area of the netlist at `node` (see [`Area`]).
    pub fn area(&self, node: TechNode) -> Area {
        Area::from_transistors(self.transistor_count(), node)
    }

    /// Checks the structural invariants of the netlist.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: forward/dangling references,
    /// duplicate port names, or a missing output list. A netlist built
    /// exclusively through the factory methods can only fail on port
    /// naming or on a missing output declaration.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut seen_inputs: HashMap<&str, ()> = HashMap::new();
        for (idx, n) in self.nodes.iter().enumerate() {
            for op in n.operands() {
                if op.index() >= idx {
                    return Err(NetlistError::ForwardReference {
                        node: NodeId(idx as u32),
                        operand: op,
                    });
                }
            }
            if let Node::Input { name } = n {
                if seen_inputs.insert(name.as_str(), ()).is_some() {
                    return Err(NetlistError::DuplicateInput { name: name.clone() });
                }
            }
        }
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        let mut seen_outputs: HashMap<&str, ()> = HashMap::new();
        for (name, node) in &self.outputs {
            if node.index() >= self.nodes.len() {
                return Err(NetlistError::DanglingOutput {
                    name: name.clone(),
                    node: *node,
                });
            }
            if seen_outputs.insert(name.as_str(), ()).is_some() {
                return Err(NetlistError::DuplicateOutput { name: name.clone() });
            }
        }
        Ok(())
    }

    /// Replaces the gate at `target` with a constant driver.
    ///
    /// This is the `const` flavour of the paper's gate-pruning
    /// transform. Ids of all other nodes are preserved so approximation
    /// genomes remain stable across rewrites.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if `target` is out of
    /// range and [`NetlistError::CannotRewriteInput`] if it names a
    /// primary input.
    pub fn rewrite_to_const(&mut self, target: NodeId, value: bool) -> Result<(), NetlistError> {
        match self.nodes.get(target.index()) {
            None => Err(NetlistError::UnknownNode { node: target }),
            Some(Node::Input { .. }) => Err(NetlistError::CannotRewriteInput { node: target }),
            Some(_) => {
                self.nodes[target.index()] = Node::Const { value };
                Ok(())
            }
        }
    }

    /// Replaces the gate at `target` with a buffer of its `which`-th
    /// operand (0 or 1) — the feed-through flavour of gate pruning.
    ///
    /// If the gate is unary, `which` is ignored. If the target is a
    /// constant it is left unchanged (a constant has no operands), which
    /// keeps genome application total.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if `target` is out of
    /// range and [`NetlistError::CannotRewriteInput`] if it names a
    /// primary input.
    pub fn rewrite_to_buf(&mut self, target: NodeId, which: usize) -> Result<(), NetlistError> {
        let node = self
            .nodes
            .get(target.index())
            .ok_or(NetlistError::UnknownNode { node: target })?;
        let replacement = match node {
            Node::Input { .. } => {
                return Err(NetlistError::CannotRewriteInput { node: target });
            }
            Node::Const { .. } => return Ok(()),
            Node::Unary { a, .. } => Node::Unary {
                op: UnOp::Buf,
                a: *a,
            },
            Node::Binary { a, b, .. } => {
                let src = if which.is_multiple_of(2) { *a } else { *b };
                Node::Unary {
                    op: UnOp::Buf,
                    a: src,
                }
            }
        };
        self.nodes[target.index()] = replacement;
        Ok(())
    }

    /// Dead-gate sweep: rebuilds the netlist keeping only the cone of
    /// logic reachable from the outputs, folding constants and
    /// collapsing buffers.
    ///
    /// Returns the swept netlist; `self` is left untouched so callers
    /// can diff transistor counts before/after. Primary inputs are
    /// always retained (even if dead) so the port interface — and thus
    /// LUT indexing — is stable.
    pub fn sweep(&self) -> Netlist {
        let vals = self.canonical_vals();
        let live = self.liveness(&vals);

        // Rebuild. Inputs always survive.
        let mut out = Netlist::new(self.name.clone());
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut const_cache: HashMap<bool, NodeId> = HashMap::new();
        for (idx, n) in self.nodes.iter().enumerate() {
            let id = NodeId(idx as u32);
            if let Node::Input { name } = n {
                let new = out.input(name.clone());
                remap[idx] = Some(new);
                continue;
            }
            if !live[idx] {
                continue;
            }
            // Materialize through the canonical value of each operand.
            let mut resolve_operand = |src: NodeId, out: &mut Netlist| -> NodeId {
                match vals[src.index()] {
                    Val::Const(c) => *const_cache.entry(c).or_insert_with(|| out.constant(c)),
                    Val::Ref(r) => remap[r.index()].expect("live operand must be remapped"),
                }
            };
            let new = match n {
                Node::Input { .. } => unreachable!("inputs handled above"),
                Node::Const { .. } => continue, // consts materialized on demand
                Node::Unary { op, a } => {
                    let a = resolve_operand(*a, &mut out);
                    out.unary(*op, a)
                }
                Node::Binary { op, a, b } => {
                    let a = resolve_operand(*a, &mut out);
                    let b = resolve_operand(*b, &mut out);
                    out.binary(*op, a, b)
                }
            };
            remap[id.index()] = Some(new);
        }
        for (name, node) in &self.outputs {
            let target = match vals[node.index()] {
                Val::Const(c) => *const_cache.entry(c).or_insert_with(|| out.constant(c)),
                Val::Ref(r) => remap[r.index()].expect("live output must be remapped"),
            };
            out.output(name.clone(), target);
        }
        out
    }

    /// Forward pass shared by [`sweep`] and [`sweep_analysis`]: per
    /// node, either a known constant or a canonical live source
    /// (buffer chains and one-const identities collapse to the node
    /// they forward).
    ///
    /// [`sweep`]: Netlist::sweep
    /// [`sweep_analysis`]: Netlist::sweep_analysis
    fn canonical_vals(&self) -> Vec<Val> {
        let mut vals: Vec<Val> = Vec::with_capacity(self.nodes.len());
        for (idx, n) in self.nodes.iter().enumerate() {
            let v = match n {
                Node::Input { .. } => Val::Ref(NodeId(idx as u32)),
                Node::Const { value } => Val::Const(*value),
                Node::Unary { op, a } => match (op, vals[a.index()]) {
                    (UnOp::Buf, v) => v,
                    (UnOp::Not, Val::Const(c)) => Val::Const(!c),
                    (UnOp::Not, Val::Ref(_)) => Val::Ref(NodeId(idx as u32)),
                },
                Node::Binary { op, a, b } => {
                    let va = vals[a.index()];
                    let vb = vals[b.index()];
                    match (va, vb) {
                        (Val::Const(x), Val::Const(y)) => {
                            Val::Const(op.apply(x as u64, y as u64) & 1 == 1)
                        }
                        _ => match Self::fold_one_const(*op, va, vb) {
                            Some(v) => v,
                            None => Val::Ref(NodeId(idx as u32)),
                        },
                    }
                }
            };
            vals.push(v);
        }
        vals
    }

    /// Marks liveness from outputs through canonicalized refs. A node
    /// is live iff it survives [`sweep`] as the canonical driver of
    /// some output cone; forwarding/folded gates are never live.
    ///
    /// [`sweep`]: Netlist::sweep
    fn liveness(&self, vals: &[Val]) -> Vec<bool> {
        let resolve = |id: NodeId| -> Val { vals[id.index()] };
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = Vec::new();
        for (_, out) in &self.outputs {
            if let Val::Ref(r) = resolve(*out) {
                stack.push(r);
            }
        }
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            for op in self.nodes[id.index()].operands() {
                if let Val::Ref(r) = resolve(op) {
                    stack.push(r);
                }
            }
        }
        live
    }

    /// Explains what [`sweep`] would remove, without rebuilding.
    ///
    /// Runs the same forward-canonicalization and liveness passes as
    /// [`sweep`] (the two share their implementation, so agreement is
    /// by construction) and reports, instead of a rebuilt netlist:
    ///
    /// - every gate `sweep` would drop, with a [`SweepReason`]
    ///   (`removed.len() == self.gate_count() - self.sweep().gate_count()`);
    /// - every primary input no output cone depends on (`sweep` keeps
    ///   such inputs to preserve the port interface, but they are
    ///   floating: no output ever observes them).
    ///
    /// A gate that is both constant-foldable and unreachable reports
    /// [`SweepReason::ConstantFold`]; reachability is only reported
    /// when no fold applies.
    ///
    /// [`sweep`]: Netlist::sweep
    pub fn sweep_analysis(&self) -> SweepAnalysis {
        let vals = self.canonical_vals();
        let live = self.liveness(&vals);
        let mut removed = Vec::new();
        let mut dead_inputs = Vec::new();
        for (idx, n) in self.nodes.iter().enumerate() {
            let id = NodeId(idx as u32);
            match n {
                Node::Input { .. } => {
                    if !live[idx] {
                        dead_inputs.push(id);
                    }
                }
                // Constants are not gates; sweep re-materializes the
                // ones still referenced on demand.
                Node::Const { .. } => {}
                Node::Unary { .. } | Node::Binary { .. } => {
                    if !live[idx] {
                        let reason = match vals[idx] {
                            Val::Const(c) => SweepReason::ConstantFold(c),
                            Val::Ref(r) if r != id => SweepReason::ForwardsTo(r),
                            Val::Ref(_) => SweepReason::Unreachable,
                        };
                        removed.push((id, reason));
                    }
                }
            }
        }
        SweepAnalysis {
            removed,
            dead_inputs,
        }
    }

    /// `x OP const` simplifications that keep the result either a
    /// constant or a direct reference. Inverting forms that would need
    /// a NOT gate are not simplified and fall back to keeping the gate.
    fn fold_one_const(op: BinOp, va: Val, vb: Val) -> Option<Val> {
        let (c, r) = match (va, vb) {
            (Val::Const(c), Val::Ref(r)) | (Val::Ref(r), Val::Const(c)) => (c, r),
            _ => return None,
        };
        match (op, c) {
            (BinOp::And, false) => Some(Val::Const(false)),
            (BinOp::And, true) => Some(Val::Ref(r)),
            (BinOp::Or, true) => Some(Val::Const(true)),
            (BinOp::Or, false) => Some(Val::Ref(r)),
            (BinOp::Xor, false) => Some(Val::Ref(r)),
            (BinOp::Nand, false) => Some(Val::Const(true)),
            (BinOp::Nor, true) => Some(Val::Const(false)),
            _ => None,
        }
    }

    /// Computes structural statistics (gate count, transistors, depth).
    pub fn stats(&self) -> NetlistStats {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max_depth = 0usize;
        for (idx, n) in self.nodes.iter().enumerate() {
            let d = n
                .operands()
                .map(|o| depth[o.index()])
                .max()
                .map_or(0, |m| m + usize::from(n.is_gate()));
            depth[idx] = d;
            max_depth = max_depth.max(d);
        }
        NetlistStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            gates: self.gate_count(),
            constants: self
                .nodes
                .iter()
                .filter(|n| matches!(n, Node::Const { .. }))
                .count(),
            transistors: self.transistor_count(),
            depth: max_depth,
        }
    }

    /// Ids of all prunable gates (unary + binary logic nodes), in
    /// topological order. This is the genome domain for the
    /// approximation search.
    pub fn gate_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_gate())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Evaluates the netlist on a single boolean input assignment,
    /// returning output values in declaration order.
    ///
    /// Convenience wrapper over the lane simulator for tests and small
    /// circuits; for exhaustive sweeps use [`crate::LaneSim`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from [`Self::input_count`].
    pub fn eval_bits(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "expected {} inputs, got {}",
            self.inputs.len(),
            inputs.len()
        );
        let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let sim = crate::sim::LaneSim::new(self);
        let out = sim.eval(&words);
        out.iter().map(|&w| w & 1 == 1).collect()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, {} transistors, depth {}",
            self.name, s.inputs, s.outputs, s.gates, s.transistors, s.depth
        )
    }
}

/// Canonical value of a node during [`Netlist::sweep`]: either a known
/// constant or a reference to the live node that produces it.
#[derive(Debug, Clone, Copy)]
enum Val {
    Const(bool),
    Ref(NodeId),
}

/// Why [`Netlist::sweep`] removes a gate, as reported by
/// [`Netlist::sweep_analysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepReason {
    /// The gate computes this compile-time constant on every input.
    ConstantFold(bool),
    /// The gate forwards the referenced node's value unchanged (buffer
    /// chain or a one-const identity such as `x AND 1`).
    ForwardsTo(NodeId),
    /// No primary-output cone depends on the gate.
    Unreachable,
}

impl fmt::Display for SweepReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepReason::ConstantFold(v) => write!(f, "folds to constant {}", u8::from(*v)),
            SweepReason::ForwardsTo(id) => write!(f, "forwards node {id}"),
            SweepReason::Unreachable => write!(f, "unreachable from outputs"),
        }
    }
}

/// Static description of what [`Netlist::sweep`] would remove, from
/// [`Netlist::sweep_analysis`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepAnalysis {
    /// Gates `sweep` would drop, in topological order, each with the
    /// reason it is removable.
    pub removed: Vec<(NodeId, SweepReason)>,
    /// Primary inputs no output cone depends on. `sweep` retains them
    /// (the port interface is stable) but they are functionally
    /// floating.
    pub dead_inputs: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut n = Netlist::new("fa");
        let a = n.input("a");
        let b = n.input("b");
        let cin = n.input("cin");
        let axb = n.binary(BinOp::Xor, a, b);
        let sum = n.binary(BinOp::Xor, axb, cin);
        let t1 = n.binary(BinOp::And, axb, cin);
        let t2 = n.binary(BinOp::And, a, b);
        let cout = n.binary(BinOp::Or, t1, t2);
        n.output("sum", sum);
        n.output("cout", cout);
        n
    }

    #[test]
    fn full_adder_truth_table() {
        let n = full_adder();
        n.validate().unwrap();
        for v in 0u8..8 {
            let a = v & 1 != 0;
            let b = v & 2 != 0;
            let c = v & 4 != 0;
            let out = n.eval_bits(&[a, b, c]);
            let expect = u8::from(a) + u8::from(b) + u8::from(c);
            assert_eq!(out[0], expect & 1 == 1, "sum for v={v}");
            assert_eq!(out[1], expect >= 2, "cout for v={v}");
        }
    }

    #[test]
    fn stats_of_full_adder() {
        let s = full_adder().stats();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.gates, 5);
        // 2 XOR (10) + 2 AND (6) + 1 OR (6) = 38.
        assert_eq!(s.transistors, 38);
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn validate_rejects_duplicate_inputs() {
        let mut n = Netlist::new("dup");
        n.input("a");
        let b = n.input("a");
        n.output("o", b);
        assert_eq!(
            n.validate(),
            Err(NetlistError::DuplicateInput {
                name: "a".to_string()
            })
        );
    }

    #[test]
    fn validate_rejects_duplicate_outputs() {
        let mut n = Netlist::new("dup");
        let a = n.input("a");
        n.output("o", a);
        n.output("o", a);
        assert_eq!(
            n.validate(),
            Err(NetlistError::DuplicateOutput {
                name: "o".to_string()
            })
        );
    }

    #[test]
    fn validate_rejects_missing_outputs() {
        let mut n = Netlist::new("empty");
        n.input("a");
        assert_eq!(n.validate(), Err(NetlistError::NoOutputs));
    }

    #[test]
    fn validate_rejects_dangling_output() {
        let mut n = Netlist::new("dangling");
        let a = n.input("a");
        n.output("ok", a);
        n.output("bad", NodeId::from_index(99));
        assert!(matches!(
            n.validate(),
            Err(NetlistError::DanglingOutput { .. })
        ));
    }

    #[test]
    fn rewrite_to_const_changes_function() {
        let mut n = full_adder();
        // Force cout to 0 by pruning the OR gate.
        let or_id = n.gate_ids().last().copied().unwrap();
        n.rewrite_to_const(or_id, false).unwrap();
        let out = n.eval_bits(&[true, true, false]);
        assert!(!out[1], "pruned cout must be 0");
        // Sum is unaffected.
        assert!(!out[0]);
    }

    #[test]
    fn rewrite_input_is_rejected() {
        let mut n = full_adder();
        let input = n.input_ids()[0];
        assert_eq!(
            n.rewrite_to_const(input, true),
            Err(NetlistError::CannotRewriteInput { node: input })
        );
        assert_eq!(
            n.rewrite_to_buf(input, 0),
            Err(NetlistError::CannotRewriteInput { node: input })
        );
    }

    #[test]
    fn rewrite_unknown_node_is_rejected() {
        let mut n = full_adder();
        let bogus = NodeId::from_index(1000);
        assert_eq!(
            n.rewrite_to_const(bogus, true),
            Err(NetlistError::UnknownNode { node: bogus })
        );
    }

    #[test]
    fn rewrite_to_buf_feeds_through_operand() {
        let mut n = Netlist::new("buf");
        let a = n.input("a");
        let b = n.input("b");
        let g = n.binary(BinOp::And, a, b);
        n.output("o", g);
        n.rewrite_to_buf(g, 0).unwrap();
        assert_eq!(n.eval_bits(&[true, false]), vec![true]); // follows a
        n.rewrite_to_buf(g, 1).unwrap(); // now a buf; stays buf of a
        assert_eq!(n.eval_bits(&[true, false]), vec![true]);
    }

    #[test]
    fn sweep_removes_pruned_logic() {
        let mut n = full_adder();
        let before = n.transistor_count();
        let or_id = n.gate_ids().last().copied().unwrap();
        n.rewrite_to_const(or_id, false).unwrap();
        let swept = n.sweep();
        swept.validate().unwrap();
        assert!(
            swept.transistor_count() < before,
            "sweep after pruning must shrink: {} !< {}",
            swept.transistor_count(),
            before
        );
        // Function of the swept netlist matches the pruned one.
        for v in 0u8..8 {
            let bits = [v & 1 != 0, v & 2 != 0, v & 4 != 0];
            assert_eq!(n.eval_bits(&bits), swept.eval_bits(&bits), "v={v}");
        }
    }

    #[test]
    fn sweep_keeps_dead_inputs() {
        let mut n = Netlist::new("deadin");
        let _a = n.input("a");
        let b = n.input("b");
        n.output("o", b);
        let swept = n.sweep();
        assert_eq!(swept.input_count(), 2, "port interface must be stable");
        assert_eq!(swept.eval_bits(&[false, true]), vec![true]);
    }

    #[test]
    fn sweep_folds_constants() {
        let mut n = Netlist::new("fold");
        let a = n.input("a");
        let c1 = n.constant(true);
        let g = n.binary(BinOp::And, a, c1); // a AND 1 == a
        let g2 = n.binary(BinOp::Xor, g, g); // x XOR x stays a gate here
        n.output("o", g2);
        let swept = n.sweep();
        // `a AND 1` folds to a ref; XOR gate remains.
        assert!(swept.gate_count() <= 1);
        for a_val in [false, true] {
            assert_eq!(swept.eval_bits(&[a_val]), n.eval_bits(&[a_val]));
        }
    }

    #[test]
    fn sweep_handles_constant_output() {
        let mut n = Netlist::new("constout");
        let a = n.input("a");
        let c0 = n.constant(false);
        let g = n.binary(BinOp::And, a, c0); // always 0
        n.output("o", g);
        let swept = n.sweep();
        swept.validate().unwrap();
        assert_eq!(swept.gate_count(), 0);
        assert_eq!(swept.eval_bits(&[true]), vec![false]);
    }

    #[test]
    fn display_formats_summary() {
        let n = full_adder();
        let s = n.to_string();
        assert!(s.contains("fa"), "{s}");
        assert!(s.contains("5 gates"), "{s}");
    }

    #[test]
    fn validate_and_sweep_zero_gate_netlist() {
        let mut n = Netlist::new("wires");
        let a = n.input("a");
        let b = n.input("b");
        n.output("x", b);
        n.output("y", a);
        n.validate().unwrap();
        assert_eq!(n.gate_count(), 0);
        let swept = n.sweep();
        swept.validate().unwrap();
        assert_eq!(swept.input_count(), 2);
        assert_eq!(swept.gate_count(), 0);
        assert_eq!(swept.eval_bits(&[true, false]), vec![false, true]);
        assert_eq!(n.sweep_analysis(), SweepAnalysis::default());
    }

    #[test]
    fn validate_and_sweep_constant_only_outputs() {
        let mut n = Netlist::new("consts");
        let c0 = n.constant(false);
        let c1 = n.constant(true);
        n.output("zero", c0);
        n.output("one", c1);
        n.validate().unwrap();
        let swept = n.sweep();
        swept.validate().unwrap();
        assert_eq!(swept.gate_count(), 0);
        assert_eq!(swept.eval_bits(&[]), vec![false, true]);
        // Nothing to remove: constants are not gates.
        assert_eq!(n.sweep_analysis(), SweepAnalysis::default());
    }

    #[test]
    fn rewrite_to_buf_out_of_range_operand_index_uses_parity() {
        // `which` beyond 1 is reduced by parity: even picks operand a,
        // odd picks operand b. The rewrite stays total.
        for (which, expect_follows_a) in [(2usize, true), (7, false), (usize::MAX, false)] {
            let mut n = Netlist::new("buf");
            let a = n.input("a");
            let b = n.input("b");
            let g = n.binary(BinOp::And, a, b);
            n.output("o", g);
            n.rewrite_to_buf(g, which).unwrap();
            n.validate().unwrap();
            assert_eq!(
                n.eval_bits(&[true, false]),
                vec![expect_follows_a],
                "which={which}"
            );
        }
    }

    #[test]
    fn rewrite_to_buf_unknown_target_is_rejected() {
        let mut n = full_adder();
        let bogus = NodeId::from_index(1000);
        assert_eq!(
            n.rewrite_to_buf(bogus, 0),
            Err(NetlistError::UnknownNode { node: bogus })
        );
    }

    #[test]
    fn sweep_analysis_matches_sweep_removal_set() {
        let mut n = full_adder();
        let or_id = n.gate_ids().last().copied().unwrap();
        n.rewrite_to_const(or_id, false).unwrap();
        let analysis = n.sweep_analysis();
        let swept = n.sweep();
        assert_eq!(
            n.gate_count() - analysis.removed.len(),
            swept.gate_count(),
            "removal set must account exactly for sweep's shrinkage"
        );
        // The swept netlist is a fixpoint: nothing left to remove.
        assert_eq!(swept.sweep_analysis().removed, Vec::new());
    }

    #[test]
    fn sweep_analysis_classifies_reasons() {
        let mut n = Netlist::new("reasons");
        let a = n.input("a");
        let b = n.input("b");
        let c1 = n.constant(true);
        let fold = n.binary(BinOp::And, a, c1); // forwards a
        let dead = n.binary(BinOp::Xor, a, b); // unreachable
        let konst = n.binary(BinOp::Or, c1, a); // folds to 1
        let live = n.binary(BinOp::And, fold, a);
        n.output("o", live);
        n.output("k", konst);
        let analysis = n.sweep_analysis();
        assert_eq!(
            analysis.removed,
            vec![
                (fold, SweepReason::ForwardsTo(a)),
                (dead, SweepReason::Unreachable),
                (konst, SweepReason::ConstantFold(true)),
            ]
        );
        assert_eq!(analysis.dead_inputs, vec![b]);
    }

    #[test]
    fn sweep_analysis_reports_dead_inputs() {
        let mut n = Netlist::new("deadin");
        let a = n.input("a");
        let _unused = n.input("u");
        n.output("o", a);
        let analysis = n.sweep_analysis();
        assert_eq!(analysis.dead_inputs, vec![NodeId::from_index(1)]);
        assert!(analysis.removed.is_empty());
    }
}
