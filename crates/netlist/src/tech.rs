//! Technology-node library.
//!
//! The paper evaluates its designs at the 7 nm, 14 nm and 28 nm nodes.
//! [`TechNode`] enumerates them and [`TechParams`] carries the physical
//! constants the rest of CARMA needs:
//!
//! * logic density (NAND2-equivalent cell area) — drives the area of
//!   the MAC array and thus embodied carbon;
//! * SRAM bit-cell area — drives buffer area;
//! * nominal clock frequency — drives FPS in the dataflow simulator;
//! * access/compute energies — used by the (extension) energy model.
//!
//! Values are calibrated from public sources (foundry disclosures,
//! WikiChip density tables); absolute precision is not required for the
//! paper's conclusions — only cross-node ordering and the area ratios
//! between exact and pruned netlists matter, and those are preserved by
//! construction.

use std::fmt;
use std::str::FromStr;

/// A fabrication technology node evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TechNode {
    /// 7 nm-class FinFET node.
    N7,
    /// 14 nm-class FinFET node.
    N14,
    /// 28 nm-class planar node.
    N28,
}

impl TechNode {
    /// All nodes, in the order the paper reports them (7, 14, 28 nm).
    pub const ALL: [TechNode; 3] = [TechNode::N7, TechNode::N14, TechNode::N28];

    /// Feature size in nanometres (nominal marketing dimension).
    pub fn nanometers(self) -> u32 {
        match self {
            TechNode::N7 => 7,
            TechNode::N14 => 14,
            TechNode::N28 => 28,
        }
    }

    /// Physical constants for this node.
    pub fn params(self) -> TechParams {
        match self {
            // NAND2 areas: derived from published transistor densities
            // (~91 MTr/mm² @7nm, ~27 MTr/mm² @14nm, ~8.1 MTr/mm² @28nm)
            // at 4 transistors per NAND2.
            TechNode::N7 => TechParams {
                node: self,
                nand2_area_um2: 0.044,
                sram_bitcell_um2: 0.027,
                clock_ghz: 1.2,
                mac_energy_pj: 0.45,
                sram_read_pj_per_byte: 0.9,
                dram_access_pj_per_byte: 15.0,
            },
            TechNode::N14 => TechParams {
                node: self,
                nand2_area_um2: 0.148,
                sram_bitcell_um2: 0.064,
                clock_ghz: 1.0,
                mac_energy_pj: 1.1,
                sram_read_pj_per_byte: 1.7,
                dram_access_pj_per_byte: 18.0,
            },
            TechNode::N28 => TechParams {
                node: self,
                nand2_area_um2: 0.49,
                sram_bitcell_um2: 0.127,
                clock_ghz: 0.8,
                mac_energy_pj: 2.8,
                sram_read_pj_per_byte: 3.2,
                dram_access_pj_per_byte: 21.0,
            },
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.nanometers())
    }
}

/// Error returned when parsing a [`TechNode`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTechNodeError {
    input: String,
}

impl fmt::Display for ParseTechNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown technology node `{}` (expected 7nm, 14nm or 28nm)",
            self.input
        )
    }
}

impl std::error::Error for ParseTechNodeError {}

impl FromStr for TechNode {
    type Err = ParseTechNodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "7" | "7nm" | "n7" => Ok(TechNode::N7),
            "14" | "14nm" | "n14" => Ok(TechNode::N14),
            "28" | "28nm" | "n28" => Ok(TechNode::N28),
            _ => Err(ParseTechNodeError {
                input: s.to_string(),
            }),
        }
    }
}

/// Physical constants of a [`TechNode`].
///
/// Obtain via [`TechNode::params`]:
///
/// ```
/// use carma_netlist::TechNode;
///
/// let p = TechNode::N7.params();
/// assert!(p.nand2_area_um2 < TechNode::N28.params().nand2_area_um2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// The node these parameters describe.
    pub node: TechNode,
    /// Area of one NAND2-equivalent standard cell, µm².
    pub nand2_area_um2: f64,
    /// Area of one 6T SRAM bit cell, µm².
    pub sram_bitcell_um2: f64,
    /// Nominal clock frequency of the accelerator, GHz.
    pub clock_ghz: f64,
    /// Energy of one 8-bit MAC operation, pJ.
    pub mac_energy_pj: f64,
    /// On-chip SRAM read energy, pJ per byte.
    pub sram_read_pj_per_byte: f64,
    /// Off-chip DRAM access energy, pJ per byte.
    pub dram_access_pj_per_byte: f64,
}

impl TechParams {
    /// Clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// SRAM macro area for `bytes` of storage, in mm², including an
    /// array-efficiency factor for periphery (sense amps, decoders).
    pub fn sram_area_mm2(&self, bytes: u64) -> f64 {
        /// Fraction of an SRAM macro that is bit cells (the rest is
        /// periphery); a typical compiled-macro figure.
        const ARRAY_EFFICIENCY: f64 = 0.7;
        let bits = bytes as f64 * 8.0;
        bits * self.sram_bitcell_um2 / ARRAY_EFFICIENCY / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_order_by_density() {
        let a7 = TechNode::N7.params().nand2_area_um2;
        let a14 = TechNode::N14.params().nand2_area_um2;
        let a28 = TechNode::N28.params().nand2_area_um2;
        assert!(a7 < a14 && a14 < a28);
    }

    #[test]
    fn sram_cells_shrink_with_node() {
        let s7 = TechNode::N7.params().sram_bitcell_um2;
        let s28 = TechNode::N28.params().sram_bitcell_um2;
        assert!(s7 < s28);
    }

    #[test]
    fn newer_nodes_clock_faster_and_use_less_energy() {
        let p7 = TechNode::N7.params();
        let p28 = TechNode::N28.params();
        assert!(p7.clock_ghz > p28.clock_ghz);
        assert!(p7.mac_energy_pj < p28.mac_energy_pj);
        assert!(p7.sram_read_pj_per_byte < p28.sram_read_pj_per_byte);
    }

    #[test]
    fn parse_roundtrip() {
        for node in TechNode::ALL {
            let s = node.to_string();
            assert_eq!(s.parse::<TechNode>().unwrap(), node);
        }
        assert!("3nm".parse::<TechNode>().is_err());
        assert_eq!("N7".parse::<TechNode>().unwrap(), TechNode::N7);
    }

    #[test]
    fn sram_area_scales_linearly() {
        let p = TechNode::N7.params();
        let a1 = p.sram_area_mm2(1024);
        let a2 = p.sram_area_mm2(2048);
        assert!((a2 / a1 - 2.0).abs() < 1e-9);
        assert!(a1 > 0.0);
    }

    #[test]
    fn clock_period_is_inverse_of_frequency() {
        let p = TechNode::N14.params();
        assert!((p.clock_period_ns() * p.clock_ghz - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_matches_marketing_name() {
        assert_eq!(TechNode::N7.to_string(), "7nm");
        assert_eq!(TechNode::N28.to_string(), "28nm");
    }
}
