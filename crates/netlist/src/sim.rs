//! Bit-parallel netlist simulation.
//!
//! [`LaneSim`] evaluates a combinational netlist on 64 independent
//! input vectors at once by packing one vector per bit lane of a `u64`.
//! An exhaustive sweep of an 8×8 multiplier (65 536 vectors) therefore
//! costs only 1 024 netlist passes, which makes exact error metrics
//! cheap enough to sit inside a genetic-algorithm inner loop.

use crate::gate::Node;
use crate::netlist::Netlist;

/// Number of input vectors evaluated per [`LaneSim::eval`] call.
pub const WORD_LANES: usize = 64;

/// A reusable lane simulator bound to one netlist.
///
/// The simulator borrows the netlist and allocates its scratch buffer
/// once, so repeated evaluation (exhaustive sweeps, Monte-Carlo error
/// sampling) does not allocate.
///
/// # Example
///
/// ```
/// use carma_netlist::{Netlist, BinOp, LaneSim};
///
/// let mut n = Netlist::new("and2");
/// let a = n.input("a");
/// let b = n.input("b");
/// let g = n.binary(BinOp::And, a, b);
/// n.output("o", g);
///
/// let sim = LaneSim::new(&n);
/// // Lane k of each word is an independent evaluation.
/// let out = sim.eval(&[0b1100, 0b1010]);
/// assert_eq!(out[0] & 0xF, 0b1000);
/// ```
#[derive(Debug)]
pub struct LaneSim<'a> {
    netlist: &'a Netlist,
}

impl<'a> LaneSim<'a> {
    /// Creates a simulator for `netlist`.
    pub fn new(netlist: &'a Netlist) -> Self {
        LaneSim { netlist }
    }

    /// The netlist this simulator evaluates.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Evaluates 64 input vectors at once.
    ///
    /// `inputs[i]` carries the value of primary input `i` across all 64
    /// lanes. Returns one word per primary output, in output
    /// declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the netlist's input count.
    pub fn eval(&self, inputs: &[u64]) -> Vec<u64> {
        let mut scratch = vec![0u64; self.netlist.nodes().len()];
        self.eval_into(inputs, &mut scratch)
    }

    /// Like [`eval`](Self::eval) but reuses a caller-provided scratch
    /// buffer (resized as needed) to avoid per-call allocation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the netlist's input count.
    pub fn eval_into(&self, inputs: &[u64], scratch: &mut Vec<u64>) -> Vec<u64> {
        let n = self.netlist;
        assert_eq!(
            inputs.len(),
            n.input_count(),
            "expected {} input words, got {}",
            n.input_count(),
            inputs.len()
        );
        scratch.clear();
        scratch.resize(n.nodes().len(), 0);
        let mut next_input = 0usize;
        for (idx, node) in n.nodes().iter().enumerate() {
            scratch[idx] = match node {
                Node::Input { .. } => {
                    let w = inputs[next_input];
                    next_input += 1;
                    w
                }
                Node::Const { value } => {
                    if *value {
                        u64::MAX
                    } else {
                        0
                    }
                }
                Node::Unary { op, a } => op.apply(scratch[a.index()]),
                Node::Binary { op, a, b } => op.apply(scratch[a.index()], scratch[b.index()]),
            };
        }
        n.output_ports()
            .iter()
            .map(|(_, id)| scratch[id.index()])
            .collect()
    }
}

/// Packs `values[k]`'s bit `bit` into lane `k` of a word, for feeding
/// integer operands into a lane simulation.
///
/// # Example
///
/// ```
/// // Lane 0 gets value 3 (bit 0 = 1), lane 1 gets value 2 (bit 0 = 0).
/// let w = carma_netlist::sim::pack_bit(&[3, 2], 0);
/// assert_eq!(w & 0b11, 0b01);
/// ```
pub fn pack_bit(values: &[u64], bit: u32) -> u64 {
    debug_assert!(values.len() <= WORD_LANES);
    let mut w = 0u64;
    for (lane, &v) in values.iter().enumerate() {
        w |= ((v >> bit) & 1) << lane;
    }
    w
}

/// Extracts lane `lane` of each output word and reassembles them into
/// an integer, treating `words[i]` as bit `i`.
///
/// # Example
///
/// ```
/// // Output bits 0b10 in lane 3.
/// let words = [0b0000_0000, 0b0000_1000];
/// assert_eq!(carma_netlist::sim::unpack_lane(&words, 3), 2);
/// ```
pub fn unpack_lane(words: &[u64], lane: usize) -> u64 {
    debug_assert!(lane < WORD_LANES);
    let mut v = 0u64;
    for (bit, &w) in words.iter().enumerate() {
        v |= ((w >> lane) & 1) << bit;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::BinOp;

    fn xor_chain(depth: usize) -> Netlist {
        let mut n = Netlist::new("xorchain");
        let a = n.input("a");
        let b = n.input("b");
        let mut cur = n.binary(BinOp::Xor, a, b);
        for _ in 1..depth {
            cur = n.binary(BinOp::Xor, cur, b);
        }
        n.output("o", cur);
        n
    }

    #[test]
    fn lanes_are_independent() {
        let n = xor_chain(1);
        let sim = LaneSim::new(&n);
        // 64 random-ish lanes.
        let a = 0xDEAD_BEEF_CAFE_F00Du64;
        let b = 0x0123_4567_89AB_CDEFu64;
        let out = sim.eval(&[a, b]);
        assert_eq!(out[0], a ^ b);
    }

    #[test]
    fn const_nodes_broadcast() {
        let mut n = Netlist::new("c");
        let a = n.input("a");
        let one = n.constant(true);
        let g = n.binary(BinOp::And, a, one);
        n.output("o", g);
        let sim = LaneSim::new(&n);
        let out = sim.eval(&[0xFF00]);
        assert_eq!(out[0], 0xFF00);
    }

    #[test]
    fn eval_into_reuses_scratch() {
        let n = xor_chain(4);
        let sim = LaneSim::new(&n);
        let mut scratch = Vec::new();
        let o1 = sim.eval_into(&[1, 1], &mut scratch);
        let o2 = sim.eval_into(&[1, 0], &mut scratch);
        // depth 4: a ^ b ^ b ^ b ^ b = a.
        assert_eq!(o1[0] & 1, 1);
        assert_eq!(o2[0] & 1, 1);
    }

    #[test]
    #[should_panic(expected = "expected 2 input words")]
    fn wrong_input_count_panics() {
        let n = xor_chain(1);
        LaneSim::new(&n).eval(&[0]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let values: Vec<u64> = (0..WORD_LANES as u64).map(|i| i * 37 % 256).collect();
        let words: Vec<u64> = (0..8).map(|bit| pack_bit(&values, bit)).collect();
        for (lane, &v) in values.iter().enumerate() {
            assert_eq!(unpack_lane(&words, lane), v & 0xFF);
        }
    }
}
