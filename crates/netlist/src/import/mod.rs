//! Structural netlist ingestion: the inverse of [`crate::verilog`].
//!
//! Two front-ends parse external gate-level descriptions into the
//! shared [`ModuleGraph`] form — a flat signal/driver map — which a
//! single back-end lowers into validated [`Netlist`]s:
//!
//! - [`verilog`] — the structural Verilog-2001 subset `to_verilog`
//!   emits (primitive gate instantiations, `wire`/`assign`, one bit
//!   per net).
//! - [`edif`] — an EDIF 2.0.0 subset (s-expression cells with
//!   `interface`/`contents`, primitive `cellRef`s, `joined` nets),
//!   plus the matching [`edif::to_edif`] emitter.
//!
//! Malformed input of any shape — truncated files, unbalanced parens,
//! undriven nets, duplicate modules, combinational loops — surfaces as
//! an [`ImportError`]; parsing never panics. Semantic admission
//! (lint profile, error bounds, equivalence) is deliberately *not*
//! done here: that is `carma-import`'s job, so the parser stays
//! faithful to the file (dead cones and floating inputs are preserved
//! for the analyzer to report, not silently dropped).

use std::fmt;
use std::path::Path;

use crate::gate::{BinOp, UnOp};
use crate::netlist::Netlist;

pub mod edif;
pub mod verilog;

/// Supported interchange formats, usually inferred from the file
/// extension via [`ImportFormat::from_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImportFormat {
    /// Structural Verilog-2001 (`.v`, `.verilog`).
    Verilog,
    /// EDIF 2.0.0 s-expressions (`.edf`, `.edif`).
    Edif,
}

impl ImportFormat {
    /// Infers the format from a path's extension (case-insensitive);
    /// `None` for unrecognized extensions.
    pub fn from_path(path: &Path) -> Option<ImportFormat> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        match ext.as_str() {
            "v" | "verilog" => Some(ImportFormat::Verilog),
            "edf" | "edif" => Some(ImportFormat::Edif),
            _ => None,
        }
    }

    /// Lower-case human-readable name (`"verilog"` / `"edif"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ImportFormat::Verilog => "verilog",
            ImportFormat::Edif => "edif",
        }
    }
}

impl fmt::Display for ImportFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parse or structural error in an imported netlist file.
///
/// `line` is 1-based; 0 means the error is not tied to a source line
/// (e.g. truncated input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportError {
    /// 1-based source line, or 0 when no line applies.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ImportError {
    pub(crate) fn at(line: usize, message: impl Into<String>) -> ImportError {
        ImportError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for ImportError {}

/// Parses `text` in the given `format` into one [`Netlist`] per module
/// (Verilog `module`, EDIF cell with contents), in file order.
///
/// Every returned netlist passes [`Netlist::validate`]. Files with no
/// modules at all are an error.
pub fn parse_netlists(text: &str, format: ImportFormat) -> Result<Vec<Netlist>, ImportError> {
    let graphs = match format {
        ImportFormat::Verilog => verilog::parse_modules(text)?,
        ImportFormat::Edif => edif::parse_modules(text)?,
    };
    if graphs.is_empty() {
        return Err(ImportError::at(
            0,
            format!("no modules found in {format} input"),
        ));
    }
    let mut seen = std::collections::HashSet::new();
    let mut netlists = Vec::with_capacity(graphs.len());
    for graph in graphs {
        if !seen.insert(graph.name.clone()) {
            return Err(ImportError::at(
                graph.line,
                format!("duplicate module `{}`", graph.name),
            ));
        }
        netlists.push(graph.into_netlist()?);
    }
    Ok(netlists)
}

/// What drives one named signal in a [`ModuleGraph`].
#[derive(Debug, Clone)]
pub(crate) enum Driver {
    /// Tied to a constant.
    Const(bool),
    /// Another signal's value, verbatim (`assign x = y`).
    Alias(String),
    /// A one-input primitive.
    Unary(UnOp, String),
    /// A two-input primitive.
    Binary(BinOp, String, String),
}

/// Flat, format-agnostic module form: named signals with at most one
/// driver each. Both parsers lower to this; [`ModuleGraph::into_netlist`]
/// does the shared topological construction and structural checks.
#[derive(Debug, Clone)]
pub(crate) struct ModuleGraph {
    pub name: String,
    /// Line the module/cell starts on (for duplicate-module errors).
    pub line: usize,
    /// Primary inputs in port-declaration order.
    pub inputs: Vec<String>,
    /// Primary outputs in port-declaration order.
    pub outputs: Vec<String>,
    /// `(signal, driver, line)` in declaration order. Dead cones stay:
    /// every listed driver is built even if no output observes it, so
    /// downstream lint sees the file as written.
    pub drivers: Vec<(String, Driver, usize)>,
}

impl ModuleGraph {
    /// Lowers the graph into a validated [`Netlist`], building every
    /// declared driver (reachable or not) in topological order.
    ///
    /// Errors: nets referenced but never driven, driven inputs,
    /// multiple drivers, combinational loops, undriven outputs.
    pub(crate) fn into_netlist(self) -> Result<Netlist, ImportError> {
        use std::collections::HashMap;

        let mut n = Netlist::new(&self.name);
        // name -> resolved node id
        let mut resolved: HashMap<&str, crate::gate::NodeId> = HashMap::new();
        for input in &self.inputs {
            resolved.insert(input, n.input(input));
        }
        // name -> index into self.drivers
        let mut driver_of: HashMap<&str, usize> = HashMap::new();
        for (idx, (signal, _, line)) in self.drivers.iter().enumerate() {
            if resolved.contains_key(signal.as_str()) {
                return Err(ImportError::at(
                    *line,
                    format!("input `{signal}` cannot be driven"),
                ));
            }
            if driver_of.insert(signal, idx).is_some() {
                return Err(ImportError::at(
                    *line,
                    format!("net `{signal}` has multiple drivers"),
                ));
            }
        }

        // Iterative DFS so pathological alias/gate chains from fuzzed
        // inputs cannot overflow the stack. `open` marks signals whose
        // operands are still being resolved (cycle detection).
        let mut open: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for (signal, _, _) in &self.drivers {
            if resolved.contains_key(signal.as_str()) {
                continue;
            }
            let mut stack: Vec<&str> = vec![signal];
            while let Some(&name) = stack.last() {
                if resolved.contains_key(name) {
                    stack.pop();
                    continue;
                }
                let Some(&didx) = driver_of.get(name) else {
                    // Point at the first statement that reads the
                    // missing net (error path only, O(n) is fine).
                    let line = self
                        .drivers
                        .iter()
                        .find(|(_, d, _)| match d {
                            Driver::Const(_) => false,
                            Driver::Alias(a) | Driver::Unary(_, a) => a == name,
                            Driver::Binary(_, a, b) => a == name || b == name,
                        })
                        .map_or(0, |(_, _, l)| *l);
                    return Err(ImportError::at(
                        line,
                        format!("net `{name}` is referenced but never driven"),
                    ));
                };
                let (_, driver, line) = &self.drivers[didx];
                let operands: Vec<&str> = match driver {
                    Driver::Const(_) => vec![],
                    Driver::Alias(a) | Driver::Unary(_, a) => vec![a.as_str()],
                    Driver::Binary(_, a, b) => vec![a.as_str(), b.as_str()],
                };
                let pending: Vec<&str> = operands
                    .iter()
                    .copied()
                    .filter(|op| !resolved.contains_key(op))
                    .collect();
                if pending.is_empty() {
                    let id = match driver {
                        Driver::Const(v) => n.constant(*v),
                        Driver::Alias(a) => resolved[a.as_str()],
                        Driver::Unary(op, a) => n.unary(*op, resolved[a.as_str()]),
                        Driver::Binary(op, a, b) => {
                            n.binary(*op, resolved[a.as_str()], resolved[b.as_str()])
                        }
                    };
                    resolved.insert(name, id);
                    open.remove(name);
                    stack.pop();
                } else {
                    if !open.insert(name) {
                        return Err(ImportError::at(
                            *line,
                            format!("combinational loop through net `{name}`"),
                        ));
                    }
                    stack.extend(pending);
                }
            }
        }

        for output in &self.outputs {
            let Some(&id) = resolved.get(output.as_str()) else {
                return Err(ImportError::at(
                    self.line,
                    format!("output `{output}` is never driven"),
                ));
            };
            n.output(output, id);
        }
        n.validate()
            .map_err(|e| ImportError::at(self.line, format!("invalid netlist: {e:?}")))?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(drivers: Vec<(&str, Driver, usize)>) -> ModuleGraph {
        ModuleGraph {
            name: "m".into(),
            line: 1,
            inputs: vec!["a".into(), "b".into()],
            outputs: vec!["y".into()],
            drivers: drivers
                .into_iter()
                .map(|(s, d, l)| (s.to_string(), d, l))
                .collect(),
        }
    }

    #[test]
    fn builds_out_of_order_declarations() {
        // y depends on t declared after it: builder must topo-sort.
        let g = graph(vec![
            ("y", Driver::Binary(BinOp::And, "t".into(), "b".into()), 2),
            ("t", Driver::Unary(UnOp::Not, "a".into()), 3),
        ]);
        let n = g.into_netlist().unwrap();
        assert_eq!(n.eval_bits(&[false, true]), vec![true]);
    }

    #[test]
    fn preserves_dead_cones() {
        let g = graph(vec![
            ("y", Driver::Alias("a".into()), 2),
            (
                "dead",
                Driver::Binary(BinOp::Xor, "a".into(), "b".into()),
                3,
            ),
        ]);
        let n = g.into_netlist().unwrap();
        assert_eq!(n.gate_count(), 1, "dead gate must survive import");
    }

    #[test]
    fn rejects_cycles_undriven_and_double_drive() {
        let cyc = graph(vec![("y", Driver::Unary(UnOp::Not, "y".into()), 2)]);
        assert!(cyc.into_netlist().unwrap_err().message.contains("loop"));

        let undriven = graph(vec![("y", Driver::Unary(UnOp::Not, "ghost".into()), 2)]);
        assert!(undriven
            .into_netlist()
            .unwrap_err()
            .message
            .contains("never driven"));

        let double = graph(vec![
            ("y", Driver::Alias("a".into()), 2),
            ("y", Driver::Alias("b".into()), 3),
        ]);
        assert!(double
            .into_netlist()
            .unwrap_err()
            .message
            .contains("multiple drivers"));

        let drives_input = graph(vec![
            ("a", Driver::Alias("b".into()), 2),
            ("y", Driver::Alias("a".into()), 3),
        ]);
        assert!(drives_input
            .into_netlist()
            .unwrap_err()
            .message
            .contains("cannot be driven"));
    }

    #[test]
    fn format_from_path() {
        assert_eq!(
            ImportFormat::from_path(Path::new("x/lib.V")),
            Some(ImportFormat::Verilog)
        );
        assert_eq!(
            ImportFormat::from_path(Path::new("lib.edif")),
            Some(ImportFormat::Edif)
        );
        assert_eq!(ImportFormat::from_path(Path::new("lib.json")), None);
        assert_eq!(ImportFormat::from_path(Path::new("lib")), None);
    }
}
