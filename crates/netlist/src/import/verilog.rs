//! Gate-level structural Verilog parser — the inverse of
//! [`crate::verilog::to_verilog`].
//!
//! Accepted subset (one bit per net, no vectors, no expressions):
//!
//! ```text
//! module NAME (port, ...);
//!   input  a; input b, c;
//!   output y;
//!   wire n1;
//!   and  g1 (n1, a, b);          // and|or|xor|nand|nor|xnor
//!   not  g2 (y, n1);             // not|buf
//!   assign n2 = 1'b0;            // constants
//!   assign y = n1;               // aliases
//! endmodule
//! ```
//!
//! `//` line comments and `/* */` block comments are skipped.
//! Statement order is irrelevant — construction topologically sorts —
//! but every referenced net must be declared (`input`/`output`/`wire`)
//! and driven exactly once.

use crate::gate::{BinOp, UnOp};

use super::{Driver, ImportError, ModuleGraph};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    /// `1'b0` / `1'b1`.
    Literal(bool),
    Punct(char),
}

fn lex(text: &str) -> Result<Vec<(Tok, usize)>, ImportError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ImportError::at(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' | ')' | ',' | ';' | '=' => {
                toks.push((Tok::Punct(c), line));
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'$')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(text[start..i].to_string()), line));
            }
            c if c.is_ascii_digit() => {
                // Only the single-bit literals 1'b0 / 1'b1 are legal.
                let rest = &bytes[i..];
                if rest.len() >= 4 && &rest[..3] == b"1'b" && (rest[3] == b'0' || rest[3] == b'1') {
                    toks.push((Tok::Literal(rest[3] == b'1'), line));
                    i += 4;
                } else {
                    return Err(ImportError::at(
                        line,
                        "unsupported literal (only 1'b0 and 1'b1 are accepted)",
                    ));
                }
            }
            other => {
                return Err(ImportError::at(
                    line,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(toks)
}

/// Cursor over the token stream with line-aware errors.
struct Cursor<'a> {
    toks: &'a [(Tok, usize)],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |(_, l)| *l)
    }

    fn next(&mut self, what: &str) -> Result<&'a Tok, ImportError> {
        match self.toks.get(self.pos) {
            Some((t, _)) => {
                self.pos += 1;
                Ok(t)
            }
            None => Err(ImportError::at(
                self.toks.last().map_or(0, |(_, l)| *l),
                format!("unexpected end of input, expected {what}"),
            )),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ImportError> {
        let line = self.line();
        match self.next(what)? {
            Tok::Ident(s) => Ok(s.clone()),
            other => Err(ImportError::at(
                line,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn punct(&mut self, c: char) -> Result<(), ImportError> {
        let line = self.line();
        match self.next(&format!("`{c}`"))? {
            Tok::Punct(p) if *p == c => Ok(()),
            other => Err(ImportError::at(
                line,
                format!("expected `{c}`, found {other:?}"),
            )),
        }
    }

    /// `ident {, ident} ;`
    fn ident_list(&mut self) -> Result<Vec<String>, ImportError> {
        let mut names = vec![self.ident("an identifier")?];
        loop {
            let line = self.line();
            match self.next("`,` or `;`")? {
                Tok::Punct(',') => names.push(self.ident("an identifier")?),
                Tok::Punct(';') => return Ok(names),
                other => {
                    return Err(ImportError::at(
                        line,
                        format!("expected `,` or `;`, found {other:?}"),
                    ))
                }
            }
        }
    }
}

fn binop_of(name: &str) -> Option<BinOp> {
    match name {
        "and" => Some(BinOp::And),
        "or" => Some(BinOp::Or),
        "xor" => Some(BinOp::Xor),
        "nand" => Some(BinOp::Nand),
        "nor" => Some(BinOp::Nor),
        "xnor" => Some(BinOp::Xnor),
        _ => None,
    }
}

fn unop_of(name: &str) -> Option<UnOp> {
    match name {
        "not" => Some(UnOp::Not),
        "buf" => Some(UnOp::Buf),
        _ => None,
    }
}

pub(crate) fn parse_modules(text: &str) -> Result<Vec<ModuleGraph>, ImportError> {
    let toks = lex(text)?;
    let mut cur = Cursor {
        toks: &toks,
        pos: 0,
    };
    let mut modules = Vec::new();
    while cur.peek().is_some() {
        modules.push(parse_module(&mut cur)?);
    }
    Ok(modules)
}

fn parse_module(cur: &mut Cursor<'_>) -> Result<ModuleGraph, ImportError> {
    use std::collections::{HashMap, HashSet};

    let module_line = cur.line();
    let kw = cur.ident("`module`")?;
    if kw != "module" {
        return Err(ImportError::at(
            module_line,
            format!("expected `module`, found `{kw}`"),
        ));
    }
    let name = cur.ident("a module name")?;
    cur.punct('(')?;
    let mut header: Vec<String> = Vec::new();
    if cur.peek() != Some(&Tok::Punct(')')) {
        header.push(cur.ident("a port name")?);
        while cur.peek() == Some(&Tok::Punct(',')) {
            cur.punct(',')?;
            header.push(cur.ident("a port name")?);
        }
    }
    cur.punct(')')?;
    cur.punct(';')?;
    {
        let mut seen = HashSet::new();
        for port in &header {
            if !seen.insert(port.as_str()) {
                return Err(ImportError::at(
                    module_line,
                    format!("port `{port}` listed twice in the module header"),
                ));
            }
        }
    }

    // direction per port name: true = input
    let mut direction: HashMap<String, (bool, usize)> = HashMap::new();
    let mut declared: HashSet<String> = header.iter().cloned().collect();
    let mut drivers: Vec<(String, Driver, usize)> = Vec::new();

    loop {
        let line = cur.line();
        let kw = cur.ident("a statement or `endmodule`")?;
        match kw.as_str() {
            "endmodule" => break,
            "input" | "output" => {
                let is_input = kw == "input";
                for port in cur.ident_list()? {
                    if !header.iter().any(|p| p == &port) {
                        return Err(ImportError::at(
                            line,
                            format!("`{port}` declared {kw} but not listed in the module header"),
                        ));
                    }
                    if direction.insert(port.clone(), (is_input, line)).is_some() {
                        return Err(ImportError::at(
                            line,
                            format!("port `{port}` has more than one direction declaration"),
                        ));
                    }
                }
            }
            "wire" => {
                for net in cur.ident_list()? {
                    if !declared.insert(net.clone()) {
                        return Err(ImportError::at(line, format!("net `{net}` redeclared")));
                    }
                }
            }
            "assign" => {
                let lhs = cur.ident("a net name")?;
                check_declared(&declared, &lhs, line)?;
                cur.punct('=')?;
                let rhs_line = cur.line();
                let driver = match cur.next("a net name or literal")? {
                    Tok::Ident(rhs) => {
                        check_declared(&declared, rhs, rhs_line)?;
                        Driver::Alias(rhs.clone())
                    }
                    Tok::Literal(v) => Driver::Const(*v),
                    other => {
                        return Err(ImportError::at(
                            rhs_line,
                            format!("expected a net name or literal, found {other:?}"),
                        ))
                    }
                };
                cur.punct(';')?;
                drivers.push((lhs, driver, line));
            }
            prim => {
                let (out, args) = parse_instance(cur, prim, line)?;
                for arg in std::iter::once(&out).chain(&args) {
                    check_declared(&declared, arg, line)?;
                }
                let driver = if let Some(op) = binop_of(prim) {
                    if args.len() != 2 {
                        return Err(ImportError::at(
                            line,
                            format!("`{prim}` takes 2 inputs, found {}", args.len()),
                        ));
                    }
                    Driver::Binary(op, args[0].clone(), args[1].clone())
                } else if let Some(op) = unop_of(prim) {
                    if args.len() != 1 {
                        return Err(ImportError::at(
                            line,
                            format!("`{prim}` takes 1 input, found {}", args.len()),
                        ));
                    }
                    Driver::Unary(op, args[0].clone())
                } else {
                    return Err(ImportError::at(
                        line,
                        format!(
                            "unknown primitive `{prim}` \
                             (accepted: and, or, xor, nand, nor, xnor, not, buf)"
                        ),
                    ));
                };
                drivers.push((out, driver, line));
            }
        }
    }

    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for port in &header {
        match direction.get(port) {
            Some((true, _)) => inputs.push(port.clone()),
            Some((false, _)) => outputs.push(port.clone()),
            None => {
                return Err(ImportError::at(
                    module_line,
                    format!("port `{port}` has no input/output declaration"),
                ))
            }
        }
    }

    Ok(ModuleGraph {
        name,
        line: module_line,
        inputs,
        outputs,
        drivers,
    })
}

/// `<instname> ( out , in {, in} ) ;` after the primitive keyword.
fn parse_instance(
    cur: &mut Cursor<'_>,
    prim: &str,
    line: usize,
) -> Result<(String, Vec<String>), ImportError> {
    let _instance = cur.ident("an instance name")?;
    cur.punct('(')?;
    let out = cur.ident("an output net")?;
    let mut args = Vec::new();
    loop {
        match cur.next("`,` or `)`")? {
            Tok::Punct(',') => args.push(cur.ident("an input net")?),
            Tok::Punct(')') => break,
            other => {
                return Err(ImportError::at(
                    line,
                    format!("expected `,` or `)` in `{prim}` instance, found {other:?}"),
                ))
            }
        }
    }
    cur.punct(';')?;
    Ok((out, args))
}

fn check_declared(
    declared: &std::collections::HashSet<String>,
    net: &str,
    line: usize,
) -> Result<(), ImportError> {
    if declared.contains(net) {
        Ok(())
    } else {
        Err(ImportError::at(line, format!("undeclared net `{net}`")))
    }
}

#[cfg(test)]
mod tests {
    use crate::import::{parse_netlists, ImportFormat};
    use crate::verilog::to_verilog;
    use crate::{check_equivalence, BinOp, Equivalence, Netlist};

    fn parse_one(text: &str) -> Netlist {
        let mut mods = parse_netlists(text, ImportFormat::Verilog).unwrap();
        assert_eq!(mods.len(), 1);
        mods.pop().unwrap()
    }

    fn err_of(text: &str) -> String {
        parse_netlists(text, ImportFormat::Verilog)
            .unwrap_err()
            .to_string()
    }

    #[test]
    fn full_adder_round_trips_equivalent() {
        let mut n = Netlist::new("fa");
        let a = n.input("a");
        let b = n.input("b");
        let cin = n.input("cin");
        let axb = n.binary(BinOp::Xor, a, b);
        let sum = n.binary(BinOp::Xor, axb, cin);
        let t1 = n.binary(BinOp::And, axb, cin);
        let t2 = n.binary(BinOp::And, a, b);
        let cout = n.binary(BinOp::Or, t1, t2);
        n.output("sum", sum);
        n.output("cout", cout);

        let back = parse_one(&to_verilog(&n));
        assert_eq!(back.name(), "fa");
        assert_eq!(back.input_count(), 3);
        assert_eq!(back.output_count(), 2);
        assert!(matches!(
            check_equivalence(&n, &back).unwrap(),
            Equivalence::Equivalent { exhaustive: true }
        ));
    }

    #[test]
    fn constants_aliases_and_comments() {
        let src = "\
// header comment
module c (a, y, z);
  input  a;
  output y; output z;
  wire k; /* block
              comment */
  assign k = 1'b1;
  and g0 (y, a, k);
  assign z = a;
endmodule
";
        let n = parse_one(src);
        assert_eq!(n.eval_bits(&[true]), vec![true, true]);
        assert_eq!(n.eval_bits(&[false]), vec![false, false]);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let msg = err_of("module m (a, y);\n  input a;\n  output y;\n");
        assert!(msg.contains("unexpected end of input"), "{msg}");
        assert!(err_of("").contains("no modules"));
        assert!(err_of("module m (a").contains("end of input"));
    }

    #[test]
    fn structural_errors_are_reported_not_panicked() {
        let base = "module m (a, y);\n  input a;\n  output y;\n";
        assert!(err_of(&format!("{base}endmodule")).contains("never driven"));
        assert!(
            err_of(&format!("{base}  not g0 (y, ghost);\nendmodule")).contains("undeclared net")
        );
        assert!(err_of(&format!(
            "{base}  assign y = a;\n  assign y = a;\nendmodule"
        ))
        .contains("multiple drivers"));
        assert!(err_of(&format!("{base}  assign a = y;\nendmodule")).contains("cannot be driven"));
        assert!(err_of(&format!(
            "{base}  wire w;\n  not g (w, w);\n  assign y = w;\nendmodule"
        ))
        .contains("combinational loop"));
        assert!(err_of(&format!("{base}  foo g (y, a);\nendmodule")).contains("unknown primitive"));
        assert!(err_of(&format!("{base}  and g (y, a);\nendmodule")).contains("takes 2 inputs"));
        let two = "module m (y); output y; assign y = 1'b0; endmodule\n";
        assert!(err_of(&format!("{two}{two}")).contains("duplicate module"));
        assert!(err_of("module m (a, a); input a; endmodule").contains("listed twice"));
        assert!(err_of("module m (a); endmodule").contains("no input/output declaration"));
        assert!(
            err_of("module m (y); output y; assign y = 2'b10; endmodule")
                .contains("unsupported literal")
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let msg = err_of("module m (a, y);\n  input a;\n  output y;\n  foo g (y, a);\nendmodule");
        assert!(msg.starts_with("line 4:"), "{msg}");
    }
}
