//! EDIF 2.0.0 netlist interchange: an s-expression parser for a
//! structural subset, and the matching [`to_edif`] emitter.
//!
//! The accepted subset mirrors what EvoApprox-style library dumps and
//! this crate's own emitter produce:
//!
//! ```text
//! (edif LIB
//!   (edifVersion 2 0 0)
//!   (library work
//!     (cell AND2 (cellType GENERIC)            ; primitive decl —
//!       (view net (viewType NETLIST)           ; no (contents), skipped
//!         (interface (port A (direction INPUT)) ...)))
//!     (cell mul4 (cellType GENERIC)            ; a module: has contents
//!       (view net (viewType NETLIST)
//!         (interface
//!           (port a0 (direction INPUT)) ... (port p7 (direction OUTPUT)))
//!         (contents
//!           (instance g9 (viewRef net (cellRef AND2)))
//!           (net a0 (joined (portRef a0) (portRef A (instanceRef g9))))
//!           (net n9 (joined (portRef Y (instanceRef g9)) (portRef p0)))
//!           ...)))))
//! ```
//!
//! Primitive cells (referenced via `cellRef`, case-insensitive):
//! `AND2 OR2 XOR2 NAND2 NOR2 XNOR2` (pins `A`,`B` → `Y`), `INV`/`NOT`
//! and `BUF` (`A` → `Y`), and the constant ties `TIE0`/`LOGIC0`/`GND`
//! and `TIE1`/`LOGIC1`/`VCC` (output `Y` only). Every net must join
//! exactly one driver (a top-level `INPUT` port or an instance `Y`
//! pin) with any number of sinks.

use std::fmt::Write as _;

use crate::gate::{BinOp, Node, UnOp};
use crate::netlist::Netlist;

use super::{Driver, ImportError, ModuleGraph};

// ---------------------------------------------------------------------------
// s-expression layer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Sexp {
    Atom(String, usize),
    List(Vec<Sexp>, usize),
}

impl Sexp {
    fn line(&self) -> usize {
        match self {
            Sexp::Atom(_, l) | Sexp::List(_, l) => *l,
        }
    }

    /// The head keyword of a list, lower-cased (`(port a0 ...)` → `port`).
    fn head(&self) -> Option<String> {
        match self {
            Sexp::List(items, _) => match items.first() {
                Some(Sexp::Atom(s, _)) => Some(s.to_ascii_lowercase()),
                _ => None,
            },
            Sexp::Atom(..) => None,
        }
    }

    fn atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(s, _) => Some(s),
            Sexp::List(..) => None,
        }
    }

    /// Children after the head keyword.
    fn rest(&self) -> &[Sexp] {
        match self {
            Sexp::List(items, _) if !items.is_empty() => &items[1..],
            _ => &[],
        }
    }

    /// First child list with the given head keyword.
    fn find(&self, keyword: &str) -> Option<&Sexp> {
        self.rest()
            .iter()
            .find(|s| s.head().as_deref() == Some(keyword))
    }
}

fn lex_sexp(text: &str) -> Result<Vec<Sexp>, ImportError> {
    // Stack of open lists; the bottom collects top-level expressions.
    let mut stack: Vec<(Vec<Sexp>, usize)> = vec![(Vec::new(), 0)];
    let mut line = 1usize;
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            ';' => {
                // EDIF comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                stack.push((Vec::new(), line));
                i += 1;
            }
            ')' => {
                let (items, open_line) = stack.pop().expect("stack never empties below 1");
                if stack.is_empty() {
                    return Err(ImportError::at(line, "unbalanced `)`"));
                }
                stack
                    .last_mut()
                    .expect("checked non-empty")
                    .0
                    .push(Sexp::List(items, open_line));
                i += 1;
            }
            '"' => {
                let start_line = line;
                i += 1;
                let begin = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ImportError::at(start_line, "unterminated string"));
                }
                stack
                    .last_mut()
                    .expect("non-empty")
                    .0
                    .push(Sexp::Atom(text[begin..i].to_string(), start_line));
                i += 1;
            }
            _ => {
                let begin = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_whitespace() || b == '(' || b == ')' || b == ';' || b == '"' {
                        break;
                    }
                    i += 1;
                }
                stack
                    .last_mut()
                    .expect("non-empty")
                    .0
                    .push(Sexp::Atom(text[begin..i].to_string(), line));
            }
        }
    }
    if stack.len() > 1 {
        let unclosed = stack.len() - 1;
        let open_line = stack.last().expect("non-empty").1;
        return Err(ImportError::at(
            open_line,
            format!("unexpected end of input: {unclosed} unclosed `(`"),
        ));
    }
    Ok(stack.pop().expect("bottom frame").0)
}

// ---------------------------------------------------------------------------
// primitive table
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prim {
    Bin(BinOp),
    Un(UnOp),
    Tie(bool),
}

fn prim_of(cell: &str) -> Option<Prim> {
    match cell.to_ascii_uppercase().as_str() {
        "AND2" | "AND" => Some(Prim::Bin(BinOp::And)),
        "OR2" | "OR" => Some(Prim::Bin(BinOp::Or)),
        "XOR2" | "XOR" => Some(Prim::Bin(BinOp::Xor)),
        "NAND2" | "NAND" => Some(Prim::Bin(BinOp::Nand)),
        "NOR2" | "NOR" => Some(Prim::Bin(BinOp::Nor)),
        "XNOR2" | "XNOR" => Some(Prim::Bin(BinOp::Xnor)),
        "INV" | "NOT" => Some(Prim::Un(UnOp::Not)),
        "BUF" => Some(Prim::Un(UnOp::Buf)),
        "TIE0" | "LOGIC0" | "GND" => Some(Prim::Tie(false)),
        "TIE1" | "LOGIC1" | "VCC" => Some(Prim::Tie(true)),
        _ => None,
    }
}

fn prim_cell_name(prim: Prim) -> &'static str {
    match prim {
        Prim::Bin(BinOp::And) => "AND2",
        Prim::Bin(BinOp::Or) => "OR2",
        Prim::Bin(BinOp::Xor) => "XOR2",
        Prim::Bin(BinOp::Nand) => "NAND2",
        Prim::Bin(BinOp::Nor) => "NOR2",
        Prim::Bin(BinOp::Xnor) => "XNOR2",
        Prim::Un(UnOp::Not) => "INV",
        Prim::Un(UnOp::Buf) => "BUF",
        Prim::Tie(false) => "TIE0",
        Prim::Tie(true) => "TIE1",
    }
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

pub(crate) fn parse_modules(text: &str) -> Result<Vec<ModuleGraph>, ImportError> {
    let tops = lex_sexp(text)?;
    let edif = tops
        .iter()
        .find(|s| s.head().as_deref() == Some("edif"))
        .ok_or_else(|| ImportError::at(0, "no (edif ...) form found"))?;
    let mut modules = Vec::new();
    for library in edif.rest() {
        if library.head().as_deref() != Some("library") {
            continue;
        }
        for cell in library.rest() {
            if cell.head().as_deref() != Some("cell") {
                continue;
            }
            if let Some(graph) = parse_cell(cell)? {
                modules.push(graph);
            }
        }
    }
    Ok(modules)
}

/// Parses one `(cell ...)`. Returns `None` for interface-only cells
/// (primitive declarations with no `(contents ...)` instances/nets).
fn parse_cell(cell: &Sexp) -> Result<Option<ModuleGraph>, ImportError> {
    use std::collections::HashMap;

    let line = cell.line();
    let name = cell
        .rest()
        .first()
        .and_then(Sexp::atom)
        .ok_or_else(|| ImportError::at(line, "cell without a name"))?
        .to_string();
    let Some(view) = cell.find("view") else {
        return Ok(None);
    };
    let contents = view.find("contents");
    let has_body = contents.is_some_and(|c| {
        c.rest()
            .iter()
            .any(|s| matches!(s.head().as_deref(), Some("instance" | "net")))
    });
    if !has_body {
        return Ok(None);
    }
    let contents = contents.expect("has_body implies contents");

    let interface = view
        .find("interface")
        .ok_or_else(|| ImportError::at(view.line(), format!("cell `{name}` has no interface")))?;
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut port_dir: HashMap<String, bool> = HashMap::new();
    for port in interface.rest() {
        if port.head().as_deref() != Some("port") {
            continue;
        }
        let pline = port.line();
        let pname = port
            .rest()
            .first()
            .and_then(Sexp::atom)
            .ok_or_else(|| ImportError::at(pline, "port without a name"))?
            .to_string();
        let dir = port
            .find("direction")
            .and_then(|d| d.rest().first())
            .and_then(Sexp::atom)
            .map(str::to_ascii_uppercase)
            .ok_or_else(|| ImportError::at(pline, format!("port `{pname}` has no direction")))?;
        let is_input = match dir.as_str() {
            "INPUT" => true,
            "OUTPUT" => false,
            other => {
                return Err(ImportError::at(
                    pline,
                    format!("port `{pname}` has unsupported direction `{other}`"),
                ))
            }
        };
        if port_dir.insert(pname.clone(), is_input).is_some() {
            return Err(ImportError::at(
                pline,
                format!("port `{pname}` declared twice"),
            ));
        }
        if is_input {
            inputs.push(pname);
        } else {
            outputs.push(pname);
        }
    }

    // instance name -> (primitive, line)
    let mut instances: HashMap<String, (Prim, usize)> = HashMap::new();
    for item in contents.rest() {
        if item.head().as_deref() != Some("instance") {
            continue;
        }
        let iline = item.line();
        let iname = item
            .rest()
            .first()
            .and_then(Sexp::atom)
            .ok_or_else(|| ImportError::at(iline, "instance without a name"))?
            .to_string();
        // (cellRef X ...) either directly or under (viewRef _ (cellRef X)).
        let cell_ref = item
            .find("cellref")
            .or_else(|| item.find("viewref").and_then(|v| v.find("cellref")))
            .and_then(|c| c.rest().first())
            .and_then(Sexp::atom)
            .ok_or_else(|| ImportError::at(iline, format!("instance `{iname}` has no cellRef")))?;
        let prim = prim_of(cell_ref).ok_or_else(|| {
            ImportError::at(
                iline,
                format!("instance `{iname}` references unknown cell `{cell_ref}`"),
            )
        })?;
        if instances.insert(iname.clone(), (prim, iline)).is_some() {
            return Err(ImportError::at(
                iline,
                format!("duplicate instance `{iname}`"),
            ));
        }
    }

    // Wire up nets: record, per instance, which net touches each pin,
    // and per net, its driver and top-level output sinks.
    // pin map: instance -> [A, B, Y] net names
    let mut pins: HashMap<&str, [Option<(String, usize)>; 3]> = instances
        .keys()
        .map(|k| (k.as_str(), [None, None, None]))
        .collect();
    // net -> (driving top input port or instance, line)
    let mut net_driver: HashMap<String, (NetDriver, usize)> = HashMap::new();
    // (output port, net, line) aliases
    let mut out_aliases: Vec<(String, String, usize)> = Vec::new();
    let mut net_names: Vec<(String, usize)> = Vec::new();

    for item in contents.rest() {
        if item.head().as_deref() != Some("net") {
            continue;
        }
        let nline = item.line();
        let nname = item
            .rest()
            .first()
            .and_then(Sexp::atom)
            .ok_or_else(|| ImportError::at(nline, "net without a name"))?
            .to_string();
        if net_names.iter().any(|(n, _)| n == &nname) {
            return Err(ImportError::at(
                nline,
                format!("net `{nname}` declared twice"),
            ));
        }
        net_names.push((nname.clone(), nline));
        let joined = item
            .find("joined")
            .ok_or_else(|| ImportError::at(nline, format!("net `{nname}` has no joined list")))?;
        for port_ref in joined.rest() {
            if port_ref.head().as_deref() != Some("portref") {
                return Err(ImportError::at(
                    port_ref.line(),
                    format!("net `{nname}`: expected (portRef ...)"),
                ));
            }
            let rline = port_ref.line();
            let pname = port_ref
                .rest()
                .first()
                .and_then(Sexp::atom)
                .ok_or_else(|| ImportError::at(rline, "portRef without a port name"))?;
            let instance_ref = port_ref
                .find("instanceref")
                .map(|r| {
                    r.rest()
                        .first()
                        .and_then(Sexp::atom)
                        .ok_or_else(|| ImportError::at(rline, "instanceRef without a name"))
                })
                .transpose()?;
            match instance_ref {
                None => {
                    // Top-level port of the cell itself.
                    match port_dir.get(pname) {
                        Some(true) => set_driver(
                            &mut net_driver,
                            &nname,
                            NetDriver::TopInput(pname.to_string()),
                            rline,
                        )?,
                        Some(false) => out_aliases.push((pname.to_string(), nname.clone(), rline)),
                        None => {
                            return Err(ImportError::at(
                                rline,
                                format!("portRef to undeclared port `{pname}`"),
                            ))
                        }
                    }
                }
                Some(iname) => {
                    let Some((prim, _)) = instances.get(iname) else {
                        return Err(ImportError::at(
                            rline,
                            format!("portRef to undeclared instance `{iname}`"),
                        ));
                    };
                    let slot = match pname.to_ascii_uppercase().as_str() {
                        "A" => 0,
                        "B" => 1,
                        "Y" | "O" | "Z" => 2,
                        other => {
                            return Err(ImportError::at(
                                rline,
                                format!("instance `{iname}` has no pin `{other}`"),
                            ))
                        }
                    };
                    let legal = match prim {
                        Prim::Bin(_) => slot <= 2,
                        Prim::Un(_) => slot == 0 || slot == 2,
                        Prim::Tie(_) => slot == 2,
                    };
                    if !legal {
                        return Err(ImportError::at(
                            rline,
                            format!("pin `{pname}` is not legal on instance `{iname}`"),
                        ));
                    }
                    let entry = pins.get_mut(iname).expect("instance checked above");
                    if entry[slot].is_some() {
                        return Err(ImportError::at(
                            rline,
                            format!("pin `{pname}` of instance `{iname}` joined twice"),
                        ));
                    }
                    entry[slot] = Some((nname.clone(), rline));
                    if slot == 2 {
                        set_driver(
                            &mut net_driver,
                            &nname,
                            NetDriver::Instance(iname.to_string()),
                            rline,
                        )?;
                    }
                }
            }
        }
    }

    // Lower to the shared ModuleGraph: one driver entry per
    // instance-driven or input-aliased net, plus output aliases.
    let mut drivers: Vec<(String, Driver, usize)> = Vec::new();
    for (nname, nline) in &net_names {
        let Some((driver, dline)) = net_driver.get(nname) else {
            return Err(ImportError::at(
                *nline,
                format!("net `{nname}` is undriven"),
            ));
        };
        match driver {
            NetDriver::TopInput(port) => {
                // A net named after the input port it carries needs no
                // alias; anything else forwards the input.
                if nname != port {
                    drivers.push((nname.clone(), Driver::Alias(port.clone()), *dline));
                }
            }
            NetDriver::Instance(iname) => {
                let (prim, iline) = &instances[iname];
                let pin = |slot: usize, label: &str| -> Result<String, ImportError> {
                    pins[iname.as_str()][slot]
                        .as_ref()
                        .map(|(net, _)| net.clone())
                        .ok_or_else(|| {
                            ImportError::at(
                                *iline,
                                format!("pin `{label}` of instance `{iname}` is unconnected"),
                            )
                        })
                };
                let driver = match prim {
                    Prim::Bin(op) => Driver::Binary(*op, pin(0, "A")?, pin(1, "B")?),
                    Prim::Un(op) => Driver::Unary(*op, pin(0, "A")?),
                    Prim::Tie(v) => Driver::Const(*v),
                };
                drivers.push((nname.clone(), driver, *dline));
            }
        }
    }
    for (iname, (_, iline)) in &instances {
        if pins[iname.as_str()][2].is_none() {
            return Err(ImportError::at(
                *iline,
                format!("output pin of instance `{iname}` is unconnected"),
            ));
        }
    }
    for (port, net, rline) in out_aliases {
        // Output ports alias their net unless the net already carries
        // the port's name (then the net's own driver entry serves).
        if port != net {
            drivers.push((port, Driver::Alias(net), rline));
        }
    }

    Ok(Some(ModuleGraph {
        name,
        line,
        inputs,
        outputs,
        drivers,
    }))
}

#[derive(Debug, Clone)]
enum NetDriver {
    TopInput(String),
    Instance(String),
}

fn set_driver(
    net_driver: &mut std::collections::HashMap<String, (NetDriver, usize)>,
    net: &str,
    driver: NetDriver,
    line: usize,
) -> Result<(), ImportError> {
    if net_driver.insert(net.to_string(), (driver, line)).is_some() {
        return Err(ImportError::at(
            line,
            format!("net `{net}` has multiple drivers"),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// emitter
// ---------------------------------------------------------------------------

/// Renders `netlist` as an EDIF 2.0.0 file in the subset
/// [`parse_modules`] accepts (and external EDIF tools read):
/// primitive cell declarations for every gate kind used, then one
/// design cell with `interface` ports and `contents`
/// instances/joined nets.
pub fn to_edif(netlist: &Netlist) -> String {
    let sanitize = |name: &str| -> String {
        let mut s: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            s.insert(0, '_');
        }
        s
    };
    let module = sanitize(netlist.name());
    let nodes = netlist.nodes();

    let prim_for = |node: &Node| -> Option<Prim> {
        match node {
            Node::Input { .. } => None,
            Node::Const { value } => Some(Prim::Tie(*value)),
            Node::Unary { op, .. } => Some(Prim::Un(*op)),
            Node::Binary { op, .. } => Some(Prim::Bin(*op)),
        }
    };

    // Net name per node: inputs keep their port name, the rest n<idx>.
    let net = |idx: usize| -> String {
        match &nodes[idx] {
            Node::Input { name } => sanitize(name),
            _ => format!("n{idx}"),
        }
    };

    // Sinks per node: (instance index, pin name).
    let mut sinks: Vec<Vec<(usize, &'static str)>> = vec![Vec::new(); nodes.len()];
    for (idx, node) in nodes.iter().enumerate() {
        match node {
            Node::Input { .. } | Node::Const { .. } => {}
            Node::Unary { a, .. } => sinks[a.index()].push((idx, "A")),
            Node::Binary { a, b, .. } => {
                sinks[a.index()].push((idx, "A"));
                sinks[b.index()].push((idx, "B"));
            }
        }
    }
    // Output ports per node.
    let mut out_ports: Vec<Vec<String>> = vec![Vec::new(); nodes.len()];
    for (name, id) in netlist.output_ports() {
        out_ports[id.index()].push(sanitize(name));
    }

    let mut used: Vec<Prim> = Vec::new();
    for node in nodes {
        if let Some(p) = prim_for(node) {
            if !used.contains(&p) {
                used.push(p);
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "; generated by carma-netlist");
    let _ = writeln!(out, "(edif {module}");
    let _ = writeln!(out, "  (edifVersion 2 0 0)");
    let _ = writeln!(out, "  (edifLevel 0)");
    let _ = writeln!(out, "  (library work");
    let _ = writeln!(out, "    (edifLevel 0)");
    for prim in used {
        let cell = prim_cell_name(prim);
        let ports = match prim {
            Prim::Bin(_) => {
                "(port A (direction INPUT)) (port B (direction INPUT)) (port Y (direction OUTPUT))"
            }
            Prim::Un(_) => "(port A (direction INPUT)) (port Y (direction OUTPUT))",
            Prim::Tie(_) => "(port Y (direction OUTPUT))",
        };
        let _ = writeln!(
            out,
            "    (cell {cell} (cellType GENERIC)\n      (view net (viewType NETLIST) (interface {ports})))"
        );
    }
    let _ = writeln!(out, "    (cell {module} (cellType GENERIC)");
    let _ = writeln!(out, "      (view net (viewType NETLIST)");
    let _ = writeln!(out, "        (interface");
    for &id in netlist.input_ids() {
        let _ = writeln!(
            out,
            "          (port {} (direction INPUT))",
            net(id.index())
        );
    }
    for (name, _) in netlist.output_ports() {
        let _ = writeln!(
            out,
            "          (port {} (direction OUTPUT))",
            sanitize(name)
        );
    }
    let _ = writeln!(out, "        )");
    let _ = writeln!(out, "        (contents");
    for (idx, node) in nodes.iter().enumerate() {
        if let Some(prim) = prim_for(node) {
            let _ = writeln!(
                out,
                "          (instance g{idx} (viewRef net (cellRef {})))",
                prim_cell_name(prim)
            );
        }
    }
    for (idx, node) in nodes.iter().enumerate() {
        let mut joins: Vec<String> = Vec::new();
        match node {
            Node::Input { .. } => joins.push(format!("(portRef {})", net(idx))),
            _ => joins.push(format!("(portRef Y (instanceRef g{idx}))")),
        }
        for (sink, pin) in &sinks[idx] {
            joins.push(format!("(portRef {pin} (instanceRef g{sink}))"));
        }
        for port in &out_ports[idx] {
            joins.push(format!("(portRef {port})"));
        }
        // Inputs that feed nothing need no net; everything else is
        // emitted even when unobserved so dead cones round-trip.
        let lonely_input = matches!(node, Node::Input { .. }) && joins.len() == 1;
        if !lonely_input {
            let _ = writeln!(
                out,
                "          (net {} (joined {}))",
                net(idx),
                joins.join(" ")
            );
        }
    }
    let _ = writeln!(out, "        )))");
    let _ = writeln!(out, "  )");
    let _ = writeln!(out, ")");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::{parse_netlists, ImportFormat};
    use crate::{check_equivalence, Equivalence};

    fn sample() -> Netlist {
        let mut n = Netlist::new("fa");
        let a = n.input("a");
        let b = n.input("b");
        let cin = n.input("cin");
        let axb = n.binary(BinOp::Xor, a, b);
        let sum = n.binary(BinOp::Xor, axb, cin);
        let t1 = n.binary(BinOp::And, axb, cin);
        let t2 = n.binary(BinOp::And, a, b);
        let cout = n.binary(BinOp::Or, t1, t2);
        let one = n.constant(true);
        let dbg = n.binary(BinOp::And, cout, one);
        n.output("sum", sum);
        n.output("cout", dbg);
        n
    }

    fn err_of(text: &str) -> String {
        parse_netlists(text, ImportFormat::Edif)
            .unwrap_err()
            .to_string()
    }

    #[test]
    fn edif_round_trip_is_equivalent() {
        let n = sample();
        let edif = to_edif(&n);
        let mut back = parse_netlists(&edif, ImportFormat::Edif).unwrap();
        assert_eq!(back.len(), 1);
        let back = back.pop().unwrap();
        assert_eq!(back.name(), "fa");
        assert_eq!(back.input_count(), n.input_count());
        assert_eq!(back.output_count(), n.output_count());
        assert!(matches!(
            check_equivalence(&n, &back).unwrap(),
            Equivalence::Equivalent { exhaustive: true }
        ));
    }

    #[test]
    fn unbalanced_and_truncated_inputs_error() {
        assert!(err_of("(edif m (library w (cell c)))\n)").contains("unbalanced"));
        let full = to_edif(&sample());
        let truncated = &full[..full.len() / 2];
        let msg = err_of(truncated);
        assert!(
            msg.contains("unclosed") || msg.contains("unexpected end"),
            "{msg}"
        );
        assert!(err_of("").contains("no (edif"));
        assert!(err_of("(library w)").contains("no (edif"));
    }

    #[test]
    fn structural_edif_errors_do_not_panic() {
        let prelude = "(edif m (library w (cell m (cellType GENERIC) (view net (viewType NETLIST)\
                       (interface (port a (direction INPUT)) (port y (direction OUTPUT)))\
                       (contents ";
        let close = ")))))";
        let build = |contents: &str| format!("{prelude}{contents}{close}");

        // Undriven net feeding an instance.
        let msg = err_of(&build(
            "(instance g (viewRef net (cellRef INV)))\
             (net w1 (joined (portRef A (instanceRef g))))\
             (net y (joined (portRef Y (instanceRef g)) (portRef y)))",
        ));
        assert!(msg.contains("undriven"), "{msg}");

        // Unknown cell.
        let msg = err_of(&build(
            "(instance g (viewRef net (cellRef DFF)))\
             (net y (joined (portRef Y (instanceRef g)) (portRef y)))",
        ));
        assert!(msg.contains("unknown cell"), "{msg}");

        // Double-driven net.
        let msg = err_of(&build(
            "(instance g (viewRef net (cellRef INV)))\
             (net a (joined (portRef a) (portRef A (instanceRef g))))\
             (net y (joined (portRef Y (instanceRef g)) (portRef a) (portRef y)))",
        ));
        assert!(
            msg.contains("multiple drivers") || msg.contains("cannot be driven"),
            "{msg}"
        );

        // Unconnected pin.
        let msg = err_of(&build(
            "(instance g (viewRef net (cellRef AND2)))\
             (net a (joined (portRef a) (portRef A (instanceRef g))))\
             (net y (joined (portRef Y (instanceRef g)) (portRef y)))",
        ));
        assert!(msg.contains("unconnected"), "{msg}");

        // Undeclared instance / port references.
        let msg = err_of(&build(
            "(net y (joined (portRef Y (instanceRef nope)) (portRef y)))",
        ));
        assert!(msg.contains("undeclared instance"), "{msg}");
        let msg = err_of(&build("(net y (joined (portRef zz)))"));
        assert!(msg.contains("undeclared port"), "{msg}");
    }

    #[test]
    fn interface_only_cells_are_skipped() {
        let text = "(edif m (library w \
            (cell AND2 (cellType GENERIC) (view net (viewType NETLIST) \
              (interface (port A (direction INPUT)) (port B (direction INPUT)) (port Y (direction OUTPUT))))) \
            (cell top (cellType GENERIC) (view net (viewType NETLIST) \
              (interface (port a (direction INPUT)) (port b (direction INPUT)) (port y (direction OUTPUT))) \
              (contents (instance g (viewRef net (cellRef AND2))) \
                (net a (joined (portRef a) (portRef A (instanceRef g)))) \
                (net b (joined (portRef b) (portRef B (instanceRef g)))) \
                (net y (joined (portRef Y (instanceRef g)) (portRef y))))))))";
        let mods = parse_netlists(text, ImportFormat::Edif).unwrap();
        assert_eq!(mods.len(), 1);
        assert_eq!(mods[0].name(), "top");
        assert_eq!(mods[0].eval_bits(&[true, true]), vec![true]);
        assert_eq!(mods[0].eval_bits(&[true, false]), vec![false]);
    }
}
