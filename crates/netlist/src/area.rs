//! Silicon area model.
//!
//! The paper's carbon model consumes *area*; this module converts gate
//! counts into physical area via NAND2-equivalents. The substitution
//! for the authors' proprietary synthesis flow is documented in
//! DESIGN.md §4: relative areas between exact and pruned netlists are
//! governed by transistor counts, which we track exactly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use crate::tech::TechNode;

/// Transistors per NAND2-equivalent gate, the conventional unit of
/// logic complexity.
pub const NAND2_TRANSISTORS: f64 = 4.0;

/// A silicon area, stored in µm².
///
/// `Area` is a newtype so that areas, energies and carbon masses can
/// never be mixed up in the long formula chains of the carbon model.
///
/// # Example
///
/// ```
/// use carma_netlist::{Area, TechNode};
///
/// let a = Area::from_transistors(4_000, TechNode::N7);
/// assert!(a.as_mm2() < Area::from_transistors(4_000, TechNode::N28).as_mm2());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Area(f64);

impl Area {
    /// Zero area.
    pub const ZERO: Area = Area(0.0);

    /// Creates an area from a value in µm².
    ///
    /// # Panics
    ///
    /// Panics if `um2` is negative or not finite.
    pub fn from_um2(um2: f64) -> Self {
        assert!(um2.is_finite() && um2 >= 0.0, "area must be ≥ 0, got {um2}");
        Area(um2)
    }

    /// Creates an area from a value in mm².
    ///
    /// # Panics
    ///
    /// Panics if `mm2` is negative or not finite.
    pub fn from_mm2(mm2: f64) -> Self {
        Self::from_um2(mm2 * 1e6)
    }

    /// Area of `transistors` transistors of random logic at `node`,
    /// through the NAND2-equivalent conversion.
    pub fn from_transistors(transistors: u64, node: TechNode) -> Self {
        let nand2_equiv = transistors as f64 / NAND2_TRANSISTORS;
        Area(nand2_equiv * node.params().nand2_area_um2)
    }

    /// The area in µm².
    pub fn as_um2(self) -> f64 {
        self.0
    }

    /// The area in mm².
    pub fn as_mm2(self) -> f64 {
        self.0 / 1e6
    }

    /// The area in cm² (the unit of the ACT fab parameters).
    pub fn as_cm2(self) -> f64 {
        self.0 / 1e8
    }
}

impl Add for Area {
    type Output = Area;

    fn add(self, rhs: Area) -> Area {
        Area(self.0 + rhs.0)
    }
}

impl AddAssign for Area {
    fn add_assign(&mut self, rhs: Area) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Area {
    type Output = Area;

    /// Scales the area by a dimensionless factor (e.g. a PE count).
    fn mul(self, rhs: f64) -> Area {
        Area(self.0 * rhs)
    }
}

impl Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        iter.fold(Area::ZERO, Add::add)
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e5 {
            write!(f, "{:.4} mm²", self.as_mm2())
        } else {
            write!(f, "{:.2} µm²", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transistor_conversion_uses_nand2_equivalents() {
        // 4 transistors = exactly one NAND2.
        let a = Area::from_transistors(4, TechNode::N28);
        assert!((a.as_um2() - TechNode::N28.params().nand2_area_um2).abs() < 1e-12);
    }

    #[test]
    fn unit_conversions_are_consistent() {
        let a = Area::from_mm2(2.5);
        assert!((a.as_um2() - 2.5e6).abs() < 1e-6);
        assert!((a.as_cm2() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Area::from_um2(10.0);
        let b = Area::from_um2(5.0);
        assert!(((a + b).as_um2() - 15.0).abs() < 1e-12);
        let mut c = a;
        c += b;
        assert!((c.as_um2() - 15.0).abs() < 1e-12);
        assert!(((a * 3.0).as_um2() - 30.0).abs() < 1e-12);
        let total: Area = [a, b, b].into_iter().sum();
        assert!((total.as_um2() - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "area must be ≥ 0")]
    fn negative_area_rejected() {
        let _ = Area::from_um2(-1.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert!(Area::from_um2(12.0).to_string().contains("µm²"));
        assert!(Area::from_mm2(3.0).to_string().contains("mm²"));
    }

    #[test]
    fn same_transistors_smaller_at_denser_node() {
        let n7 = Area::from_transistors(1_000_000, TechNode::N7);
        let n14 = Area::from_transistors(1_000_000, TechNode::N14);
        let n28 = Area::from_transistors(1_000_000, TechNode::N28);
        assert!(n7.as_um2() < n14.as_um2());
        assert!(n14.as_um2() < n28.as_um2());
    }
}
