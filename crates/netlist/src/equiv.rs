//! Combinational equivalence checking.
//!
//! After an approximation transform (and especially after [`sweep`]),
//! one wants proof that a rewrite preserved — or a measure of how it
//! changed — the function. [`check_equivalence`] compares two netlists
//! with identical port interfaces: exhaustively for ≤ 20 inputs (via
//! the 64-lane simulator), by seeded random sampling beyond that.
//!
//! [`sweep`]: crate::Netlist::sweep

use crate::netlist::Netlist;
use crate::sim::{pack_bit, LaneSim};

/// Input-count limit for exhaustive checking (2^20 ≈ 1M vectors).
const EXHAUSTIVE_INPUT_LIMIT: usize = 20;
/// Vector count for sampled checking.
const SAMPLE_VECTORS: usize = 1 << 16;

/// The verdict of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// All checked vectors agree; exhaustive checks are proofs,
    /// sampled ones are evidence (`exhaustive` tells which).
    Equivalent {
        /// Whether every input vector was checked.
        exhaustive: bool,
    },
    /// A disagreement was found; the witness is the offending input
    /// assignment (LSB-first, one bool per primary input).
    Mismatch {
        /// Counterexample input assignment.
        witness: Vec<bool>,
    },
}

impl Equivalence {
    /// Whether the verdict is "equivalent".
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent { .. })
    }
}

/// Errors of [`check_equivalence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivError {
    /// The two netlists have different input counts.
    InputMismatch {
        /// Inputs of the first netlist.
        left: usize,
        /// Inputs of the second netlist.
        right: usize,
    },
    /// The two netlists have different output counts.
    OutputMismatch {
        /// Outputs of the first netlist.
        left: usize,
        /// Outputs of the second netlist.
        right: usize,
    },
}

impl std::fmt::Display for EquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivError::InputMismatch { left, right } => {
                write!(f, "input count mismatch: {left} vs {right}")
            }
            EquivError::OutputMismatch { left, right } => {
                write!(f, "output count mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for EquivError {}

/// Checks functional equivalence of two netlists with matching port
/// interfaces (same input and output counts, positional matching).
///
/// # Errors
///
/// Returns [`EquivError`] if the port interfaces differ.
///
/// # Example
///
/// ```
/// use carma_netlist::{Netlist, BinOp};
/// use carma_netlist::equiv::check_equivalence;
///
/// # fn main() -> Result<(), carma_netlist::equiv::EquivError> {
/// // a AND b  vs  NOT(NOT a OR NOT b): De Morgan equivalent.
/// let mut x = Netlist::new("and");
/// let a = x.input("a");
/// let b = x.input("b");
/// let g = x.binary(BinOp::And, a, b);
/// x.output("y", g);
///
/// let mut y = Netlist::new("demorgan");
/// let a = y.input("a");
/// let b = y.input("b");
/// let na = y.unary(carma_netlist::UnOp::Not, a);
/// let nb = y.unary(carma_netlist::UnOp::Not, b);
/// let o = y.binary(BinOp::Or, na, nb);
/// let g = y.unary(carma_netlist::UnOp::Not, o);
/// y.output("y", g);
///
/// assert!(check_equivalence(&x, &y)?.is_equivalent());
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(left: &Netlist, right: &Netlist) -> Result<Equivalence, EquivError> {
    if left.input_count() != right.input_count() {
        return Err(EquivError::InputMismatch {
            left: left.input_count(),
            right: right.input_count(),
        });
    }
    if left.output_count() != right.output_count() {
        return Err(EquivError::OutputMismatch {
            left: left.output_count(),
            right: right.output_count(),
        });
    }
    let n_inputs = left.input_count();
    if n_inputs <= EXHAUSTIVE_INPUT_LIMIT {
        Ok(check_vectors(
            left,
            right,
            ExhaustiveVectors::new(n_inputs),
            true,
        ))
    } else {
        Ok(check_vectors(
            left,
            right,
            SampledVectors::new(n_inputs, SAMPLE_VECTORS),
            false,
        ))
    }
}

fn check_vectors(
    left: &Netlist,
    right: &Netlist,
    vectors: impl Iterator<Item = Vec<u64>>,
    exhaustive: bool,
) -> Equivalence {
    let n_inputs = left.input_count();
    let lsim = LaneSim::new(left);
    let rsim = LaneSim::new(right);
    let mut lscratch = Vec::new();
    let mut rscratch = Vec::new();

    let mut batch: Vec<Vec<u64>> = Vec::with_capacity(64);
    let mut flush = |batch: &mut Vec<Vec<u64>>| -> Option<Vec<bool>> {
        if batch.is_empty() {
            return None;
        }
        // Pack per-input words across the batch lanes.
        let words: Vec<u64> = (0..n_inputs)
            .map(|i| {
                let bits: Vec<u64> = batch.iter().map(|v| v[i]).collect();
                pack_bit(&bits, 0)
            })
            .collect();
        let lo = lsim.eval_into(&words, &mut lscratch);
        let ro = rsim.eval_into(&words, &mut rscratch);
        for (lane, vector) in batch.iter().enumerate() {
            for (lw, rw) in lo.iter().zip(&ro) {
                if (lw >> lane) & 1 != (rw >> lane) & 1 {
                    let witness = vector.iter().map(|&b| b == 1).collect();
                    batch.clear();
                    return Some(witness);
                }
            }
        }
        batch.clear();
        None
    };

    for v in vectors {
        batch.push(v);
        if batch.len() == 64 {
            if let Some(witness) = flush(&mut batch) {
                return Equivalence::Mismatch { witness };
            }
        }
    }
    if let Some(witness) = flush(&mut batch) {
        return Equivalence::Mismatch { witness };
    }
    Equivalence::Equivalent { exhaustive }
}

/// All 2^n input assignments, one bit (0/1) per input.
struct ExhaustiveVectors {
    n: usize,
    next: u64,
    total: u64,
}

impl ExhaustiveVectors {
    fn new(n: usize) -> Self {
        ExhaustiveVectors {
            n,
            next: 0,
            total: 1u64 << n,
        }
    }
}

impl Iterator for ExhaustiveVectors {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.next >= self.total {
            return None;
        }
        let v = (0..self.n).map(|i| (self.next >> i) & 1).collect();
        self.next += 1;
        Some(v)
    }
}

/// Seeded pseudo-random assignments (xorshift; no external RNG needed
/// at this layer).
struct SampledVectors {
    n: usize,
    state: u64,
    remaining: usize,
}

impl SampledVectors {
    fn new(n: usize, count: usize) -> Self {
        SampledVectors {
            n,
            state: 0x9E37_79B9_7F4A_7C15,
            remaining: count,
        }
    }

    fn next_word(&mut self) -> u64 {
        // xorshift64*.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl Iterator for SampledVectors {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut v = Vec::with_capacity(self.n);
        let mut word = self.next_word();
        let mut bits_left = 64;
        for _ in 0..self.n {
            if bits_left == 0 {
                word = self.next_word();
                bits_left = 64;
            }
            v.push(word & 1);
            word >>= 1;
            bits_left -= 1;
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{BinOp, UnOp};

    fn and2() -> Netlist {
        let mut n = Netlist::new("and2");
        let a = n.input("a");
        let b = n.input("b");
        let g = n.binary(BinOp::And, a, b);
        n.output("y", g);
        n
    }

    fn nand_not() -> Netlist {
        let mut n = Netlist::new("nandnot");
        let a = n.input("a");
        let b = n.input("b");
        let g = n.binary(BinOp::Nand, a, b);
        let y = n.unary(UnOp::Not, g);
        n.output("y", y);
        n
    }

    #[test]
    fn equivalent_implementations_pass() {
        let v = check_equivalence(&and2(), &nand_not()).unwrap();
        assert_eq!(v, Equivalence::Equivalent { exhaustive: true });
    }

    #[test]
    fn sweep_preserves_equivalence() {
        let mut n = and2();
        let one = n.constant(true);
        let a = n.input_ids()[0];
        let g = n.binary(BinOp::And, a, one);
        n.output("z", g);
        let swept = n.sweep();
        assert!(check_equivalence(&n, &swept).unwrap().is_equivalent());
    }

    #[test]
    fn mismatch_produces_valid_witness() {
        let mut or2 = Netlist::new("or2");
        let a = or2.input("a");
        let b = or2.input("b");
        let g = or2.binary(BinOp::Or, a, b);
        or2.output("y", g);
        let v = check_equivalence(&and2(), &or2).unwrap();
        match v {
            Equivalence::Mismatch { witness } => {
                assert_eq!(witness.len(), 2);
                // The witness must actually distinguish them.
                let l = and2().eval_bits(&witness);
                let r = or2.eval_bits(&witness);
                assert_ne!(l, r);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn interface_mismatches_are_errors() {
        let mut one_in = Netlist::new("buf");
        let a = one_in.input("a");
        one_in.output("y", a);
        assert!(matches!(
            check_equivalence(&and2(), &one_in),
            Err(EquivError::InputMismatch { .. })
        ));

        let mut two_out = and2();
        let a = two_out.input_ids()[0];
        two_out.output("y2", a);
        assert!(matches!(
            check_equivalence(&and2(), &two_out),
            Err(EquivError::OutputMismatch { .. })
        ));
    }

    #[test]
    fn wide_netlists_use_sampling() {
        // 24 inputs: a parity chain, equivalent to itself.
        let build = || {
            let mut n = Netlist::new("parity24");
            let inputs: Vec<_> = (0..24).map(|i| n.input(format!("i{i}"))).collect();
            let mut acc = inputs[0];
            for &x in &inputs[1..] {
                acc = n.binary(BinOp::Xor, acc, x);
            }
            n.output("p", acc);
            n
        };
        let v = check_equivalence(&build(), &build()).unwrap();
        assert_eq!(v, Equivalence::Equivalent { exhaustive: false });
    }

    #[test]
    fn sampling_finds_gross_differences() {
        let mut left = Netlist::new("wide_and");
        let inputs: Vec<_> = (0..24).map(|i| left.input(format!("i{i}"))).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = left.binary(BinOp::And, acc, x);
        }
        left.output("y", acc);

        let mut right = Netlist::new("wide_const");
        for i in 0..24 {
            right.input(format!("i{i}"));
        }
        let one = right.constant(true);
        right.output("y", one);

        let v = check_equivalence(&left, &right).unwrap();
        assert!(matches!(v, Equivalence::Mismatch { .. }));
    }
}
