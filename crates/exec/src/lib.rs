//! # carma-exec
//!
//! The CARMA execution engine: a deterministic, dependency-free
//! parallel-map built on `std::thread::scope`, shared by every
//! evaluation layer of the workspace (GA/NSGA-II population
//! evaluation, multiplier-library characterization, `ErrorProfile`
//! sweeps, the CDP flow and the bench binaries).
//!
//! ## Determinism contract
//!
//! Every primitive in this crate guarantees **bit-identical results at
//! any thread count**, including 1. This holds by construction:
//!
//! * work items are indexed, and each result lands in the output slot
//!   of its input index — scheduling order never reorders outputs;
//! * items never share mutable state through the pool; the only
//!   cross-thread traffic is the work queue cursor and the collected
//!   `(index, result)` pairs;
//! * randomized work derives a private RNG seed from
//!   [`derive_seed`]`(master, index)` — a splitmix64 mix keyed by the
//!   item index, not by which worker ran it or when
//!   ([`par_map_seeded`]).
//!
//! Callers therefore parallelize freely without forking experiment
//! outputs: `CARMA_THREADS=1` is the reference serial path and every
//! other thread count must reproduce it byte-for-byte. The root test
//! suite (`tests/determinism_parallel.rs`) enforces this end-to-end
//! for the GA, NSGA-II, library characterization and the full
//! `ga_cdp` flow.
//!
//! ## Thread-count control
//!
//! The pool width is resolved, in order, from:
//!
//! 1. a scoped override installed by [`with_threads`] (used by tests
//!    and benches to compare widths race-free within one process);
//! 2. the `CARMA_THREADS` environment variable (read once per
//!    process);
//! 3. [`std::thread::available_parallelism`].
//!
//! Nested calls never oversubscribe: a `par_map` issued from inside a
//! pool worker runs serially on that worker, so outer-level
//! parallelism (e.g. a batch of GA genomes) is never multiplied by
//! inner-level parallelism (e.g. an error sweep inside one genome's
//! fitness).
//!
//! ## Scheduling
//!
//! Workers self-schedule off a shared atomic cursor: an idle worker
//! steals the next unclaimed item index instead of owning a fixed
//! stripe, so a straggler item cannot serialize the tail the way
//! static chunking would. Because results are written by input index,
//! this dynamic schedule has no observable effect on outputs.
//!
//! ```
//! use carma_exec::{par_map, with_threads};
//!
//! let squares = par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Bit-identical at any width:
//! let wide = with_threads(8, || par_map(&[1u64, 2, 3], |&x| x * x));
//! let narrow = with_threads(1, || par_map(&[1u64, 2, 3], |&x| x * x));
//! assert_eq!(wide, narrow);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// Set while the current thread is a pool worker: nested `par_map`
    /// calls run serially instead of spawning threads-of-threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Scoped thread-count override installed by [`with_threads`]
    /// (0 = no override).
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// `CARMA_THREADS` parsed once per process (`None` = unset/invalid).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| parse_threads(std::env::var("CARMA_THREADS").ok().as_deref()))
}

/// The `CARMA_THREADS` parse every resolver shares: trimmed positive
/// integer, anything else `None`.
fn parse_threads(text: Option<&str>) -> Option<usize> {
    text.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// A warning for `CARMA_THREADS` text the engine cannot use (e.g.
/// `CARMA_THREADS=fast` or `=0`), which the lenient parse would
/// otherwise silently ignore, falling back to available parallelism.
/// Returns `None` when the variable is unset, empty, or a valid
/// positive integer. Entry points (the `carma` CLI, the legacy bench
/// binaries) print the `Some` text to stderr before running.
pub fn threads_env_diagnostic() -> Option<String> {
    match std::env::var("CARMA_THREADS") {
        Ok(v) if !v.is_empty() && parse_threads(Some(&v)).is_none() => Some(format!(
            "warning: unrecognized CARMA_THREADS value `{v}` — the accepted form is \
             a positive integer (e.g. CARMA_THREADS=4); ignoring it and using \
             available parallelism where the environment decides the width"
        )),
        _ => None,
    }
}

/// The thread count the pool will use for a `par_map` issued from the
/// current thread: 1 inside a pool worker, else the [`with_threads`]
/// override, else `CARMA_THREADS`, else the machine's available
/// parallelism.
pub fn current_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o >= 1 {
        return o;
    }
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs `f` with the pool width pinned to `threads` on this thread
/// (shadowing `CARMA_THREADS`), restoring the previous setting on
/// exit. Results are unaffected by construction — this only changes
/// how much hardware the same deterministic schedule uses — which is
/// exactly what the determinism suite exploits to compare widths
/// race-free inside one test process.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads >= 1, "thread count must be ≥ 1");
    let prev = THREAD_OVERRIDE.with(|o| o.replace(threads));
    // Restore on unwind too, so a panicking closure under test does
    // not leak the override into subsequent tests on this thread.
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Splitmix64-style per-item seed derivation: mixes a master seed with
/// an item index into an independent, well-distributed RNG seed.
/// Depends only on `(master, index)`, never on thread placement —
/// the keystone of reproducible randomized parallel work.
#[must_use]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Equivalent to `items.iter().map(f).collect()` — bit-identically so,
/// at every thread count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    dispatch(items.len(), |i| f(&items[i]))
}

/// [`par_map`] with the item index passed to the closure.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    dispatch(items.len(), |i| f(i, &items[i]))
}

/// [`par_map`] for randomized per-item work: the closure receives a
/// private seed, [`derive_seed`]`(master, index)`, from which it
/// should build its own RNG. The resulting stream per item is fixed by
/// `(master, index)` alone, so outputs are reproducible at any thread
/// count — unlike threading one shared RNG through the loop, which
/// would entangle the streams with the schedule.
pub fn par_map_seeded<T, R, F>(items: &[T], master: u64, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, u64) -> R + Sync,
{
    dispatch(items.len(), |i| f(&items[i], derive_seed(master, i as u64)))
}

/// Computes `f(0), f(1), …, f(n-1)` in parallel, preserving index
/// order — `par_map` over a virtual `0..n` slice.
pub fn par_gen<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    dispatch(n, f)
}

/// The engine: evaluates `f` on every index in `0..n` across the
/// resolved number of scoped workers and returns the results in index
/// order. The calling thread participates as a worker (only
/// `threads - 1` OS threads are spawned, and the caller never idles in
/// a pure join), which keeps the fixed overhead of small batches to a
/// single spawn at `threads = 2`. Worker panics are propagated to the
/// caller after the scope joins.
fn dispatch<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_threads().min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let work_loop = || {
        IN_WORKER.with(|w| w.set(true));
        let mut local = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            local.push((i, f(i)));
        }
        local
    };

    // Spawned workers start with empty thread-locals, so the caller's
    // tracing context is captured here and re-installed on each one —
    // spans opened inside `f` parent under the span active at the
    // dispatch call, whatever thread they land on. `None` when tracing
    // is off; propagating that is free. The caller keeps its own
    // context and runs `work_loop` directly.
    let ambient = carma_trace::ambient();
    let mut buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads - 1)
            .map(|_| {
                let ambient = ambient.clone();
                s.spawn(move || carma_trace::with_ambient(ambient, work_loop))
            })
            .collect();
        // `work_loop` flags the caller as in-worker too (suppressing
        // nested parallelism inside `f`); clear it afterwards, on
        // unwind included — a caller that reaches dispatch() was not a
        // worker, or current_threads() would have been 1.
        let own = {
            struct ClearWorkerFlag;
            impl Drop for ClearWorkerFlag {
                fn drop(&mut self) {
                    IN_WORKER.with(|w| w.set(false));
                }
            }
            let _clear = ClearWorkerFlag;
            work_loop()
        };
        let mut all = vec![own];
        all.extend(handles.into_iter().map(|h| match h.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }));
        all
    });

    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buckets.drain(..).flatten() {
        debug_assert!(out[i].is_none(), "index {i} computed twice");
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 17).collect();
        for threads in [1, 2, 3, 8] {
            let parallel = with_threads(threads, || par_map(&items, |&x| x.wrapping_mul(x) ^ 17));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_indexed_sees_correct_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let tagged = with_threads(4, || par_map_indexed(&items, |i, s| format!("{i}:{s}")));
        assert_eq!(tagged, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn par_gen_orders_by_index() {
        let v = with_threads(5, || par_gen(100, |i| i * 3));
        assert_eq!(v, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn seeds_depend_on_index_not_schedule() {
        let items = vec![(); 64];
        let a = with_threads(1, || par_map_seeded(&items, 42, |_, seed| seed));
        let b = with_threads(8, || par_map_seeded(&items, 42, |_, seed| seed));
        assert_eq!(a, b);
        // Distinct indices get distinct seeds (splitmix64 is a
        // bijection composed with index mixing — collisions in 64
        // draws would be astronomically unlikely).
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len());
        // And a different master seed moves every stream.
        let c = with_threads(8, || par_map_seeded(&items, 43, |_, seed| seed));
        assert_ne!(a, c);
    }

    #[test]
    fn nested_par_map_runs_serially_not_exponentially() {
        // 8 outer × nested inner: the inner calls must degrade to
        // serial (IN_WORKER), so this completes with ≤ 8 spawned
        // threads instead of 64 — and still returns ordered results.
        let outer = with_threads(8, || par_gen(8, |i| par_gen(8, move |j| i * 10 + j)));
        for (i, inner) in outer.iter().enumerate() {
            assert_eq!(*inner, (0..8).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn with_threads_restores_on_exit_and_unwind() {
        let before = current_threads();
        with_threads(3, || assert_eq!(current_threads(), 3));
        assert_eq!(current_threads(), before);
        let caught = std::panic::catch_unwind(|| {
            with_threads(5, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_gen(16, |i| {
                    if i == 11 {
                        panic!("item 11 failed");
                    }
                    i
                })
            })
        });
        assert!(caught.is_err());
        // The caller participates as a worker; a caught panic must not
        // leave this thread flagged in-worker (which would silently
        // serialize every later par_map on it).
        assert!(!IN_WORKER.with(Cell::get));
        let ok = with_threads(4, || par_gen(8, |i| i));
        assert_eq!(ok, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "thread count must be ≥ 1")]
    fn zero_threads_rejected() {
        with_threads(0, || ());
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("fast")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn derive_seed_is_stable() {
        // Pin a few values: the derivation is part of the determinism
        // contract, so changing it silently would fork every seeded
        // experiment.
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
    }
}
