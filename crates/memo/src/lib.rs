//! Content-addressed, stage-level memoization for the CARMA flow.
//!
//! The serve-layer result cache only hits on *byte-identical* resolved
//! scenarios; overlapping scenarios (`fig2` then `deployment` on the
//! same node/model) share almost all of their real work but none of
//! their cache entries. This crate provides the shared memo store that
//! fixes that: results are keyed per *stage* of the compute graph —
//!
//! - **library** — `(family, width, depth/config)` → characterized
//!   multiplier library,
//! - **context** — `(library key, node, calibration)` → accuracy-drop
//!   table + perf-cache seed,
//! - **cell** — `(context key, carbon model, model, objective/GA spec,
//!   seed)` → one sweep or GA result,
//!
//! each addressed by a 128-bit fingerprint of a canonical-JSON
//! description of exactly the inputs that determine the stage's output
//! (thread count excluded), the same discipline as
//! `ResolvedScenario::fingerprint()`.
//!
//! The store is two-tier: a sharded in-memory map of `Arc<dyn Any>`
//! values (zero serialization on the hot path) plus an optional disk
//! tier (`<dir>/<stage>/<fingerprint>.json`, tmp+rename writes,
//! hex-only key guard — the same safety rules as
//! `carma-serve`'s result cache). Values are encoded/decoded by
//! caller-supplied codecs so this crate stays dependency-free; a
//! corrupt or unreadable disk entry simply decodes to `None` and is
//! recomputed (and overwritten), never served.
//!
//! Everything memoized through this store must be a pure, deterministic
//! function of its canonical key — then a hit is bit-identical to a
//! recompute and the cache never needs invalidation.

use std::any::Any;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The three stages of the memoized compute graph, in dependency
/// order: a context key embeds its library key, a cell key embeds its
/// context key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Characterized multiplier library (family × width × depth).
    Library,
    /// Per-node evaluation context seed: accuracy-drop table plus
    /// performance-cache entries.
    Context,
    /// One experiment cell: a sweep or GA result for a concrete
    /// (context, model, objective, GA spec, seed).
    Cell,
}

impl Stage {
    /// All stages, in display order.
    pub const ALL: [Stage; 3] = [Stage::Library, Stage::Context, Stage::Cell];

    /// Stable lowercase name — used as the on-disk subdirectory and in
    /// metrics labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Library => "library",
            Stage::Context => "context",
            Stage::Cell => "cell",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Library => 0,
            Stage::Context => 1,
            Stage::Cell => 2,
        }
    }

    /// The trace span name of a lookup in this stage.
    pub fn span_name(self) -> &'static str {
        match self {
            Stage::Library => "memo.library",
            Stage::Context => "memo.context",
            Stage::Cell => "memo.cell",
        }
    }
}

/// Hit/miss counters for one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounts {
    /// Lookups served from the store (memory or disk).
    pub hits: u64,
    /// Lookups that fell through to a recompute.
    pub misses: u64,
    /// The subset of `hits` that came from the disk tier (and were
    /// promoted to memory).
    pub disk_hits: u64,
}

/// A point-in-time snapshot of the store's counters, per stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Library-stage counters.
    pub library: StageCounts,
    /// Context-stage counters.
    pub context: StageCounts,
    /// Cell-stage counters.
    pub cell: StageCounts,
}

impl MemoStats {
    /// Counters for `stage`.
    pub fn stage(&self, stage: Stage) -> StageCounts {
        match stage {
            Stage::Library => self.library,
            Stage::Context => self.context,
            Stage::Cell => self.cell,
        }
    }
}

#[derive(Default)]
struct StageAtomics {
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
}

impl StageAtomics {
    fn snapshot(&self) -> StageCounts {
        StageCounts {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }
}

/// Number of lock shards in the in-memory tier (same shape as the
/// serve result cache and the context perf memo).
const MEMO_SHARDS: usize = 16;

type MemoShard = HashMap<String, Arc<dyn Any + Send + Sync>>;

/// FNV-1a 64-bit over `bytes`, from `basis`.
fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// 128-bit content fingerprint of a canonical-JSON string: two
/// independent FNV-1a passes rendered as 32 lowercase hex chars —
/// the same derivation as `ResolvedScenario::fingerprint()`, so stage
/// keys and whole-scenario keys live in one address-space discipline.
pub fn fingerprint(canon: &str) -> String {
    let lo = fnv1a64(canon.as_bytes(), 0xCBF2_9CE4_8422_2325);
    let hi = fnv1a64(canon.as_bytes(), 0x9E37_79B9_7F4A_7C15);
    format!("{hi:016x}{lo:016x}")
}

/// The two-tier content-addressed memo store.
///
/// Thread-safe (`&self` everywhere); concurrent misses on the same key
/// are single-flighted so an expensive stage is computed once even
/// when several workers want it at the same moment.
pub struct MemoStore {
    shards: [Mutex<MemoShard>; MEMO_SHARDS],
    dir: Option<PathBuf>,
    counters: [StageAtomics; 3],
    in_flight: Mutex<HashMap<String, Arc<Mutex<()>>>>,
}

fn shard_index(key: &str) -> usize {
    (fnv1a64(key.as_bytes(), 0xCBF2_9CE4_8422_2325) % MEMO_SHARDS as u64) as usize
}

impl MemoStore {
    /// A memory-only store.
    pub fn in_memory() -> Self {
        Self::build(None).expect("no directory to create")
    }

    /// A store mirrored to `dir` (`<dir>/<stage>/<fingerprint>.json`;
    /// the stage subdirectories are created if missing).
    pub fn with_disk(dir: PathBuf) -> io::Result<Self> {
        Self::build(Some(dir))
    }

    fn build(dir: Option<PathBuf>) -> io::Result<Self> {
        if let Some(d) = &dir {
            for stage in Stage::ALL {
                std::fs::create_dir_all(d.join(stage.as_str()))?;
            }
        }
        Ok(MemoStore {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            dir,
            counters: std::array::from_fn(|_| StageAtomics::default()),
            in_flight: Mutex::new(HashMap::new()),
        })
    }

    /// Whether this store has a disk tier.
    pub fn has_disk(&self) -> bool {
        self.dir.is_some()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            library: self.counters[Stage::Library.index()].snapshot(),
            context: self.counters[Stage::Context.index()].snapshot(),
            cell: self.counters[Stage::Cell.index()].snapshot(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<MemoShard> {
        &self.shards[shard_index(key)]
    }

    fn disk_path(&self, stage: Stage, fp: &str) -> Option<PathBuf> {
        // Fingerprints are produced internally, but refuse anything
        // that is not plain lowercase hex before touching the
        // filesystem with it (same guard as the serve result cache).
        let dir = self.dir.as_ref()?;
        let is_hex = !fp.is_empty()
            && fp
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
        is_hex.then(|| dir.join(stage.as_str()).join(format!("{fp}.json")))
    }

    fn write_disk(&self, stage: Stage, fp: &str, payload: &str) {
        if let Some(path) = self.disk_path(stage, fp) {
            // Write-then-rename so a concurrent reader (or a second
            // process sharing the memo dir) never sees a torn file.
            // Best-effort: a full or read-only disk degrades the store
            // to memory-only rather than failing the computation.
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            if std::fs::write(&tmp, payload.as_bytes()).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }

    fn memory_get<T: Send + Sync + 'static>(&self, key: &str) -> Option<Arc<T>> {
        self.shard(key)
            .lock()
            .expect("memo lock")
            .get(key)
            .and_then(|any| Arc::clone(any).downcast::<T>().ok())
    }

    fn memory_put<T: Send + Sync + 'static>(&self, key: String, value: Arc<T>) {
        self.shard(&key)
            .lock()
            .expect("memo lock")
            .insert(key, value as Arc<dyn Any + Send + Sync>);
    }

    /// Looks up `canon`'s fingerprint in `stage`, recomputing on miss.
    ///
    /// `encode`/`decode` translate the value to/from its durable JSON
    /// payload; they are only invoked when a disk tier is configured.
    /// `decode` returning `None` (corrupt or stale entry) counts as a
    /// miss: the value is recomputed and the entry overwritten.
    ///
    /// `compute` must be a pure function of the canonical key — that
    /// is the whole contract that makes hits bit-identical to
    /// recomputes.
    pub fn get_or_compute<T, E, D, C>(
        &self,
        stage: Stage,
        canon: &str,
        encode: E,
        decode: D,
        compute: C,
    ) -> Arc<T>
    where
        T: Send + Sync + 'static,
        E: FnOnce(&T) -> String,
        D: FnOnce(&str) -> Option<T>,
        C: FnOnce() -> T,
    {
        self.get_or_compute_keyed(stage, &fingerprint(canon), encode, decode, compute)
    }

    /// [`get_or_compute`](Self::get_or_compute) with a pre-derived
    /// fingerprint (for callers that cache the key alongside the
    /// value, e.g. the context's write-back handle).
    pub fn get_or_compute_keyed<T, E, D, C>(
        &self,
        stage: Stage,
        fp: &str,
        encode: E,
        decode: D,
        compute: C,
    ) -> Arc<T>
    where
        T: Send + Sync + 'static,
        E: FnOnce(&T) -> String,
        D: FnOnce(&str) -> Option<T>,
        C: FnOnce() -> T,
    {
        let counters = &self.counters[stage.index()];
        let span = carma_trace::span!(stage.span_name());
        let key = format!("{}/{}", stage.as_str(), fp);
        if let Some(v) = self.memory_get::<T>(&key) {
            counters.hits.fetch_add(1, Ordering::Relaxed);
            span.annotate("hit");
            return v;
        }
        // Single-flight: one lock per key; losers of the race block
        // here, then find the winner's value in the memory recheck.
        let gate = Arc::clone(
            self.in_flight
                .lock()
                .expect("in-flight lock")
                .entry(key.clone())
                .or_default(),
        );
        let _guard = gate.lock().expect("in-flight key lock");
        if let Some(v) = self.memory_get::<T>(&key) {
            counters.hits.fetch_add(1, Ordering::Relaxed);
            span.annotate("hit");
            return v;
        }
        if let Some(path) = self.disk_path(stage, fp) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Some(value) = decode(&text) {
                    let value = Arc::new(value);
                    self.memory_put(key, Arc::clone(&value));
                    counters.hits.fetch_add(1, Ordering::Relaxed);
                    counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                    span.annotate("disk_hit");
                    return value;
                }
            }
        }
        let value = Arc::new(compute());
        if self.dir.is_some() {
            self.write_disk(stage, fp, &encode(&value));
        }
        self.memory_put(key, Arc::clone(&value));
        counters.misses.fetch_add(1, Ordering::Relaxed);
        span.annotate("miss");
        value
    }

    /// Unconditionally (over)writes `fp` in `stage` — the write-back
    /// path for values enriched after first computation (a context's
    /// warmed perf cache). Leaves the hit/miss counters alone.
    pub fn put<T, E>(&self, stage: Stage, fp: &str, value: T, encode: E) -> Arc<T>
    where
        T: Send + Sync + 'static,
        E: FnOnce(&T) -> String,
    {
        let value = Arc::new(value);
        if self.dir.is_some() {
            self.write_disk(stage, fp, &encode(&value));
        }
        self.memory_put(format!("{}/{}", stage.as_str(), fp), Arc::clone(&value));
        value
    }
}

/// Bit-exact f64 encoding for durable payloads: the IEEE-754 bits as
/// 16 lowercase hex chars. (The vendored JSON value type stores
/// numbers as f64 via decimal text, which is not a bit-exact
/// round-trip for every value; hex bits are.)
pub fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_hex`].
pub fn f64_from_hex(s: &str) -> Option<f64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok().map(f64::from_bits))
        .flatten()
}

/// u64 as 16 lowercase hex chars (JSON numbers are f64, exact only to
/// 2^53).
pub fn u64_hex(v: u64) -> String {
    format!("{v:016x}")
}

/// Inverse of [`u64_hex`].
pub fn u64_from_hex(s: &str) -> Option<u64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("carma-memo-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn encode_u32(v: &u32) -> String {
        v.to_string()
    }

    fn decode_u32(s: &str) -> Option<u32> {
        s.trim().parse().ok()
    }

    #[test]
    fn fingerprints_are_stable_hex_and_input_sensitive() {
        let a = fingerprint("{\"x\":1}");
        let b = fingerprint("{\"x\":1}");
        let c = fingerprint("{\"x\":2}");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
        assert!(a
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)));
    }

    #[test]
    fn memory_tier_computes_once_and_counts() {
        let store = MemoStore::in_memory();
        let mut computes = 0;
        for _ in 0..3 {
            let v = store.get_or_compute(Stage::Library, "canon-a", encode_u32, decode_u32, || {
                computes += 1;
                41 + computes
            });
            assert_eq!(*v, 42);
        }
        assert_eq!(computes, 1);
        let stats = store.stats();
        assert_eq!(
            stats.library,
            StageCounts {
                hits: 2,
                misses: 1,
                disk_hits: 0
            }
        );
        assert_eq!(stats.context, StageCounts::default());
    }

    #[test]
    fn stages_do_not_share_an_address_space() {
        let store = MemoStore::in_memory();
        let a = store.get_or_compute(Stage::Library, "same", encode_u32, decode_u32, || 1u32);
        let b = store.get_or_compute(Stage::Cell, "same", encode_u32, decode_u32, || 2u32);
        assert_eq!((*a, *b), (1, 2));
    }

    #[test]
    fn disk_tier_survives_a_fresh_store() {
        let dir = tempdir("survive");
        let first = MemoStore::with_disk(dir.clone()).expect("create dirs");
        first.get_or_compute(Stage::Context, "ctx", encode_u32, decode_u32, || 7u32);

        let second = MemoStore::with_disk(dir.clone()).expect("reopen dirs");
        let v = second.get_or_compute(Stage::Context, "ctx", encode_u32, decode_u32, || {
            panic!("must be served from disk")
        });
        assert_eq!(*v, 7);
        let stats = second.stats();
        assert_eq!(
            stats.context,
            StageCounts {
                hits: 1,
                misses: 0,
                disk_hits: 1
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_recomputed_and_overwritten() {
        let dir = tempdir("poison");
        let store = MemoStore::with_disk(dir.clone()).expect("create dirs");
        let fp = fingerprint("poisoned");
        let path = dir.join("cell").join(format!("{fp}.json"));
        std::fs::write(&path, "{ not json at all").expect("poison the entry");

        let v = store.get_or_compute(Stage::Cell, "poisoned", encode_u32, decode_u32, || 99u32);
        assert_eq!(*v, 99, "corrupt entry must be recomputed, never served");
        assert_eq!(
            store.stats().cell,
            StageCounts {
                hits: 0,
                misses: 1,
                disk_hits: 0
            }
        );
        // The overwrite repaired the entry: a fresh store decodes it.
        let repaired = std::fs::read_to_string(&path).expect("entry rewritten");
        assert_eq!(decode_u32(&repaired), Some(99));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_overwrites_and_skips_counters() {
        let dir = tempdir("put");
        let store = MemoStore::with_disk(dir.clone()).expect("create dirs");
        let fp = fingerprint("wb");
        store.get_or_compute_keyed(Stage::Context, &fp, encode_u32, decode_u32, || 1u32);
        store.put(Stage::Context, &fp, 2u32, encode_u32);
        let v = store.get_or_compute_keyed(Stage::Context, &fp, encode_u32, decode_u32, || {
            panic!("present in memory")
        });
        assert_eq!(*v, 2);
        let on_disk = std::fs::read_to_string(dir.join("context").join(format!("{fp}.json")))
            .expect("written through");
        assert_eq!(on_disk, "2");
        assert_eq!(
            store.stats().context,
            StageCounts {
                hits: 1,
                misses: 1,
                disk_hits: 0
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_hex_fingerprints_never_touch_disk() {
        let dir = tempdir("nonhex");
        let store = MemoStore::with_disk(dir.clone()).expect("create dirs");
        store.put(Stage::Library, "../escape", 1u32, encode_u32);
        store.put(Stage::Library, "UPPER", 1u32, encode_u32);
        for stage in Stage::ALL {
            let entries: Vec<_> = std::fs::read_dir(dir.join(stage.as_str()))
                .expect("stage dir exists")
                .collect();
            assert!(entries.is_empty(), "disk write for a non-hex key");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn number_codecs_round_trip_bit_exactly() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1.0 / 3.0, f64::INFINITY] {
            let back = f64_from_hex(&f64_hex(v)).expect("round trip");
            assert_eq!(v.to_bits(), back.to_bits());
        }
        let nan = f64_from_hex(&f64_hex(f64::NAN)).expect("round trip");
        assert!(nan.is_nan());
        for v in [0u64, 1, u64::MAX, (1 << 53) + 1] {
            assert_eq!(u64_from_hex(&u64_hex(v)), Some(v));
        }
        assert_eq!(f64_from_hex("xyz"), None);
        assert_eq!(u64_from_hex("123"), None, "length-guarded");
    }
}
