//! Wafer geometry: dies per wafer and wasted silicon accounting.
//!
//! Eq. 1 of the paper charges each die not only for its own area but
//! for its share of the *wasted* wafer area (edge dies, saw streets,
//! edge exclusion). We use the standard dies-per-wafer estimate
//!
//! ```text
//! DPW = π·(d/2)² / A  −  π·d / sqrt(2·A)
//! ```
//!
//! and attribute `(usable wafer area − DPW·A) / DPW` of wasted silicon
//! to each die.

use carma_netlist::Area;

/// A silicon wafer description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wafer {
    /// Wafer diameter in millimetres.
    pub diameter_mm: f64,
    /// Edge-exclusion ring width in millimetres (no printable dies).
    pub edge_exclusion_mm: f64,
}

impl Wafer {
    /// The industry-standard 300 mm production wafer with a 3 mm edge
    /// exclusion.
    pub fn standard_300mm() -> Self {
        Wafer {
            diameter_mm: 300.0,
            edge_exclusion_mm: 3.0,
        }
    }

    /// Usable (printable) wafer area.
    pub fn usable_area(&self) -> Area {
        let r = (self.diameter_mm - 2.0 * self.edge_exclusion_mm) / 2.0;
        Area::from_mm2(std::f64::consts::PI * r * r)
    }

    /// Estimated number of whole dies printable on the wafer.
    ///
    /// Uses the first-order dies-per-wafer formula; returns at least 1
    /// as long as the die fits in the usable area at all, and 0 for
    /// dies larger than the wafer.
    ///
    /// # Panics
    ///
    /// Panics if `die` has zero area.
    pub fn dies_per_wafer(&self, die: Area) -> f64 {
        assert!(die.as_mm2() > 0.0, "die area must be positive");
        let d = self.diameter_mm - 2.0 * self.edge_exclusion_mm;
        let a = die.as_mm2();
        let dpw = std::f64::consts::PI * (d / 2.0) * (d / 2.0) / a
            - std::f64::consts::PI * d / (2.0 * a).sqrt();
        if dpw < 0.0 {
            if a <= self.usable_area().as_mm2() {
                1.0
            } else {
                0.0
            }
        } else {
            dpw.floor().max(1.0)
        }
    }

    /// Wasted silicon area attributed to each die: the usable wafer
    /// area not covered by whole dies, divided by the die count.
    ///
    /// # Panics
    ///
    /// Panics if `die` has zero area or does not fit on the wafer.
    pub fn wasted_area_per_die(&self, die: Area) -> Area {
        let dpw = self.dies_per_wafer(die);
        assert!(dpw >= 1.0, "die does not fit on the wafer");
        let covered = die.as_mm2() * dpw;
        let wasted_total = (self.usable_area().as_mm2() - covered).max(0.0);
        Area::from_mm2(wasted_total / dpw)
    }
}

impl Default for Wafer {
    fn default() -> Self {
        Wafer::standard_300mm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn usable_area_of_300mm_wafer() {
        let w = Wafer::standard_300mm();
        // π·147² mm² ≈ 67 887 mm².
        assert!((w.usable_area().as_mm2() - 67_887.0).abs() < 10.0);
    }

    #[test]
    fn small_dies_are_plentiful() {
        let w = Wafer::standard_300mm();
        // A 2 mm² edge-AI die: tens of thousands per wafer.
        let dpw = w.dies_per_wafer(Area::from_mm2(2.0));
        assert!(dpw > 20_000.0, "dpw = {dpw}");
    }

    #[test]
    fn known_dpw_for_100mm2_die() {
        let w = Wafer::standard_300mm();
        let dpw = w.dies_per_wafer(Area::from_mm2(100.0));
        // π·147²/100 − π·294/√200 ≈ 679 − 65 ≈ 614.
        assert!((550.0..680.0).contains(&dpw), "dpw = {dpw}");
    }

    #[test]
    fn giant_die_returns_zero_or_one() {
        let w = Wafer::standard_300mm();
        assert_eq!(w.dies_per_wafer(Area::from_mm2(100_000.0)), 0.0);
        // A die exactly at the usable-area scale but geometrically
        // unplaceable by the first-order formula: degrades to 1.
        let big = Area::from_mm2(50_000.0);
        assert!(w.dies_per_wafer(big) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "die area must be positive")]
    fn zero_die_rejected() {
        let _ = Wafer::standard_300mm().dies_per_wafer(Area::ZERO);
    }

    proptest! {
        #[test]
        fn waste_fraction_grows_with_die_size(mm2 in 1.0f64..400.0) {
            let w = Wafer::standard_300mm();
            let small = Area::from_mm2(mm2);
            let large = Area::from_mm2(mm2 * 4.0);
            let frac = |a: Area| {
                w.wasted_area_per_die(a).as_mm2() / a.as_mm2()
            };
            // Larger dies waste a larger *fraction* of the wafer
            // (more edge loss per die) — the effect the paper's
            // "wasted area" term captures.
            prop_assert!(frac(large) > frac(small) * 0.5);
        }

        #[test]
        fn dies_cover_no_more_than_usable_area(mm2 in 0.5f64..2000.0) {
            let w = Wafer::standard_300mm();
            let die = Area::from_mm2(mm2);
            let dpw = w.dies_per_wafer(die);
            prop_assert!(dpw * mm2 <= w.usable_area().as_mm2() * 1.001);
        }
    }
}
