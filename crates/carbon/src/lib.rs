//! # carma-carbon
//!
//! Embodied-carbon model for the CARMA project, reimplementing the
//! ACT-style (Gupta et al., ISCA '22) / ECO-CHIP-style (Sudarshan et
//! al., HPCA '24) methodology the paper relies on.
//!
//! The paper's equations:
//!
//! ```text
//! C_embodied = CFPA × A_die + CFPA_Si × A_wasted          (Eq. 1)
//! CFPA       = (CI_fab × EPA + C_gas + C_material) / Y     (Eq. 2)
//! ```
//!
//! where `CI_fab` is the carbon intensity of the fab's electricity
//! grid, `EPA` the energy consumed per unit area of processed die,
//! `C_gas` direct greenhouse-gas emissions per area, `C_material` the
//! carbon of raw material procurement per area, and `Y` the fabrication
//! yield (a function of die area and the node's defect density).
//!
//! The optimization target of the paper is the **Carbon Delay Product**
//! (CDP): embodied carbon × inference delay.
//!
//! ## Example
//!
//! ```
//! use carma_carbon::{CarbonModel, Cdp};
//! use carma_netlist::{Area, TechNode};
//!
//! let model = CarbonModel::for_node(TechNode::N7);
//! let die = Area::from_mm2(2.0);
//! let carbon = model.embodied_carbon(die);
//! assert!(carbon.as_grams() > 0.0);
//!
//! // 40 FPS → 25 ms per inference.
//! let cdp = Cdp::from_fps(carbon, 40.0);
//! assert!(cdp.value() > 0.0);
//! ```

pub mod deployment;
pub mod embodied;
pub mod metrics;
pub mod params;
pub mod system;
pub mod wafer;
pub mod yield_model;

pub use deployment::{DeploymentProfile, FootprintBreakdown};
pub use embodied::{CarbonBreakdown, CarbonMass, CarbonModel};
pub use metrics::{Cdp, Cep, Edp, OperationalCarbon};
pub use params::{FabParams, GridMix, SILICON_CFPA_G_PER_CM2};
pub use system::{Die, Package, SystemCarbon};
pub use wafer::Wafer;
pub use yield_model::YieldModel;
