//! Fabrication yield as a function of die area and defect density.
//!
//! The paper notes that *"the technology node used in the fabrication
//! process significantly impacts scaling trends and yield results"*;
//! yield enters Eq. 2 as the divisor of CFPA. Three classical models
//! are provided; Murphy's is the default (and what ACT uses), the other
//! two power the `ablation_yield` bench.

use carma_netlist::Area;

/// A die-yield model `Y(A, D₀) ∈ (0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum YieldModel {
    /// Poisson model: `Y = exp(−A·D₀)`. Pessimistic for large dies.
    Poisson,
    /// Murphy's model: `Y = ((1 − exp(−A·D₀)) / (A·D₀))²`. The ACT
    /// default.
    #[default]
    Murphy,
    /// Negative-binomial (Stapper) model with clustering parameter
    /// `alpha`: `Y = (1 + A·D₀/α)^(−α)`.
    NegativeBinomial {
        /// Defect clustering parameter (typically 1–5).
        alpha: f64,
    },
}

impl YieldModel {
    /// Computes the yield for a die of `area` at defect density
    /// `defects_per_cm2`.
    ///
    /// Returns a value in `(0, 1]`; a zero-area die yields 1.
    ///
    /// # Panics
    ///
    /// Panics if `defects_per_cm2` is negative, or if
    /// [`YieldModel::NegativeBinomial`] was built with `alpha ≤ 0`.
    pub fn yield_for(&self, area: Area, defects_per_cm2: f64) -> f64 {
        assert!(
            defects_per_cm2 >= 0.0 && defects_per_cm2.is_finite(),
            "defect density must be ≥ 0"
        );
        let ad = area.as_cm2() * defects_per_cm2;
        if ad == 0.0 {
            return 1.0;
        }
        match *self {
            YieldModel::Poisson => (-ad).exp(),
            YieldModel::Murphy => {
                let t = (1.0 - (-ad).exp()) / ad;
                t * t
            }
            YieldModel::NegativeBinomial { alpha } => {
                assert!(alpha > 0.0, "alpha must be > 0");
                (1.0 + ad / alpha).powf(-alpha)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const D0: f64 = 0.1;

    #[test]
    fn zero_area_yields_one() {
        for m in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha: 3.0 },
        ] {
            assert_eq!(m.yield_for(Area::ZERO, D0), 1.0);
        }
    }

    #[test]
    fn zero_defects_yield_one() {
        let a = Area::from_mm2(100.0);
        assert_eq!(YieldModel::Murphy.yield_for(a, 0.0), 1.0);
    }

    #[test]
    fn murphy_is_between_poisson_and_negbin() {
        // Classical ordering for moderate A·D0: Poisson ≤ Murphy ≤
        // negative binomial (clustered defects waste fewer dies).
        let a = Area::from_mm2(80.0); // 0.8 cm² → A·D0 = 0.08… sizeable
        let p = YieldModel::Poisson.yield_for(a, 1.0);
        let m = YieldModel::Murphy.yield_for(a, 1.0);
        let nb = YieldModel::NegativeBinomial { alpha: 2.0 }.yield_for(a, 1.0);
        assert!(p < m, "poisson {p} < murphy {m}");
        assert!(m < nb, "murphy {m} < negbin {nb}");
    }

    #[test]
    fn known_poisson_value() {
        // A = 1 cm², D0 = 1 → Y = e^-1.
        let y = YieldModel::Poisson.yield_for(Area::from_mm2(100.0), 1.0);
        assert!((y - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "defect density must be ≥ 0")]
    fn negative_defect_density_rejected() {
        let _ = YieldModel::Murphy.yield_for(Area::from_mm2(1.0), -0.5);
    }

    #[test]
    #[should_panic(expected = "alpha must be > 0")]
    fn non_positive_alpha_rejected() {
        let _ = YieldModel::NegativeBinomial { alpha: 0.0 }.yield_for(Area::from_mm2(1.0), 0.1);
    }

    proptest! {
        #[test]
        fn yield_is_in_unit_interval(mm2 in 0.0f64..2000.0, d0 in 0.0f64..2.0) {
            for m in [
                YieldModel::Poisson,
                YieldModel::Murphy,
                YieldModel::NegativeBinomial { alpha: 3.0 },
            ] {
                let y = m.yield_for(Area::from_mm2(mm2), d0);
                prop_assert!(y > 0.0 && y <= 1.0, "{m:?}: {y}");
            }
        }

        #[test]
        fn yield_is_monotone_decreasing_in_area(
            mm2 in 1.0f64..500.0,
            extra in 1.0f64..500.0,
            d0 in 0.01f64..1.0,
        ) {
            for m in [
                YieldModel::Poisson,
                YieldModel::Murphy,
                YieldModel::NegativeBinomial { alpha: 3.0 },
            ] {
                let y_small = m.yield_for(Area::from_mm2(mm2), d0);
                let y_large = m.yield_for(Area::from_mm2(mm2 + extra), d0);
                prop_assert!(y_large < y_small, "{m:?}: {y_large} !< {y_small}");
            }
        }
    }
}
