//! Sustainability metrics: CDP (the paper's fitness), plus CEP/EDP and
//! an operational-carbon model used by the ablation benches.

use std::fmt;

use crate::embodied::CarbonMass;
use crate::params::GridMix;

/// Carbon Delay Product: embodied carbon × inference delay.
///
/// *"CDP is a comprehensive metric that integrates performance and the
/// embodied carbon footprint"* — the fitness function of the paper's
/// genetic algorithm. Lower is better.
///
/// ```
/// use carma_carbon::{CarbonMass, Cdp};
///
/// let carbon = CarbonMass::from_grams(20.0);
/// let fast = Cdp::from_fps(carbon, 50.0);
/// let slow = Cdp::from_fps(carbon, 25.0);
/// assert!(fast.value() < slow.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Cdp {
    carbon: CarbonMass,
    delay_s: f64,
}

impl Cdp {
    /// Builds a CDP from embodied carbon and a per-inference delay in
    /// seconds.
    ///
    /// # Panics
    ///
    /// Panics if `delay_s` is not finite and positive.
    pub fn new(carbon: CarbonMass, delay_s: f64) -> Self {
        assert!(
            delay_s.is_finite() && delay_s > 0.0,
            "delay must be > 0, got {delay_s}"
        );
        Cdp { carbon, delay_s }
    }

    /// Builds a CDP from embodied carbon and a throughput in frames per
    /// second (delay = 1/FPS).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not finite and positive.
    pub fn from_fps(carbon: CarbonMass, fps: f64) -> Self {
        assert!(fps.is_finite() && fps > 0.0, "fps must be > 0, got {fps}");
        Cdp::new(carbon, 1.0 / fps)
    }

    /// The scalar CDP value in gCO₂·s; lower is better.
    pub fn value(&self) -> f64 {
        self.carbon.as_grams() * self.delay_s
    }

    /// The embodied-carbon factor.
    pub fn carbon(&self) -> CarbonMass {
        self.carbon
    }

    /// The delay factor in seconds.
    pub fn delay_s(&self) -> f64 {
        self.delay_s
    }
}

impl fmt::Display for Cdp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} gCO₂·s", self.value())
    }
}

/// Carbon Energy Product: embodied carbon × energy per inference.
/// An alternative fitness explored by the `ablation_metric` bench.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Cep {
    carbon: CarbonMass,
    energy_j: f64,
}

impl Cep {
    /// Builds a CEP from embodied carbon and per-inference energy in
    /// joules.
    ///
    /// # Panics
    ///
    /// Panics if `energy_j` is not finite and positive.
    pub fn new(carbon: CarbonMass, energy_j: f64) -> Self {
        assert!(
            energy_j.is_finite() && energy_j > 0.0,
            "energy must be > 0, got {energy_j}"
        );
        Cep { carbon, energy_j }
    }

    /// The scalar CEP value in gCO₂·J; lower is better.
    pub fn value(&self) -> f64 {
        self.carbon.as_grams() * self.energy_j
    }
}

/// Energy Delay Product — the classical efficiency metric, provided so
/// the ablation can show what optimizing for EDP instead of CDP does to
/// embodied carbon.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Edp {
    energy_j: f64,
    delay_s: f64,
}

impl Edp {
    /// Builds an EDP from per-inference energy (J) and delay (s).
    ///
    /// # Panics
    ///
    /// Panics if either argument is not finite and positive.
    pub fn new(energy_j: f64, delay_s: f64) -> Self {
        assert!(energy_j.is_finite() && energy_j > 0.0, "energy must be > 0");
        assert!(delay_s.is_finite() && delay_s > 0.0, "delay must be > 0");
        Edp { energy_j, delay_s }
    }

    /// The scalar EDP value in J·s; lower is better.
    pub fn value(&self) -> f64 {
        self.energy_j * self.delay_s
    }
}

/// Operational (use-phase) carbon model: emissions from the electricity
/// the accelerator consumes over its deployed lifetime.
///
/// The paper focuses on embodied carbon because recent studies show it
/// *"now surpasses operational emissions"* for edge ML; this model lets
/// the benches quantify exactly that comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperationalCarbon {
    /// Carbon intensity of the deployment site's electricity.
    pub grid: GridMix,
    /// Average power draw in watts.
    pub power_w: f64,
    /// Deployed lifetime in hours.
    pub lifetime_hours: f64,
}

impl OperationalCarbon {
    /// Creates an operational model.
    ///
    /// # Panics
    ///
    /// Panics if power or lifetime is negative or not finite.
    pub fn new(grid: GridMix, power_w: f64, lifetime_hours: f64) -> Self {
        assert!(power_w.is_finite() && power_w >= 0.0, "power must be ≥ 0");
        assert!(
            lifetime_hours.is_finite() && lifetime_hours >= 0.0,
            "lifetime must be ≥ 0"
        );
        OperationalCarbon {
            grid,
            power_w,
            lifetime_hours,
        }
    }

    /// Total use-phase emissions over the lifetime.
    pub fn total(&self) -> CarbonMass {
        let kwh = self.power_w * self.lifetime_hours / 1000.0;
        CarbonMass::from_grams(kwh * self.grid.grams_per_kwh())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdp_value_is_product() {
        let cdp = Cdp::new(CarbonMass::from_grams(30.0), 0.025);
        assert!((cdp.value() - 0.75).abs() < 1e-12);
        assert!((cdp.delay_s() - 0.025).abs() < 1e-15);
        assert!((cdp.carbon().as_grams() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn from_fps_inverts_throughput() {
        let cdp = Cdp::from_fps(CarbonMass::from_grams(10.0), 40.0);
        assert!((cdp.delay_s() - 0.025).abs() < 1e-15);
    }

    #[test]
    fn cdp_trades_carbon_against_speed() {
        // Half the carbon at half the speed → same CDP.
        let a = Cdp::from_fps(CarbonMass::from_grams(20.0), 40.0);
        let b = Cdp::from_fps(CarbonMass::from_grams(10.0), 20.0);
        assert!((a.value() - b.value()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fps must be > 0")]
    fn zero_fps_rejected() {
        let _ = Cdp::from_fps(CarbonMass::from_grams(1.0), 0.0);
    }

    #[test]
    fn cep_and_edp_values() {
        assert!((Cep::new(CarbonMass::from_grams(5.0), 2.0).value() - 10.0).abs() < 1e-12);
        assert!((Edp::new(3.0, 2.0).value() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn operational_carbon_of_edge_device() {
        // 2 W edge device, 3 years ≈ 26 280 h on the world-average grid:
        // 52.56 kWh × 475 g/kWh ≈ 25 kg.
        let op = OperationalCarbon::new(GridMix::WorldAverage, 2.0, 26_280.0);
        let total = op.total();
        assert!((total.as_kg() - 24.966).abs() < 0.1, "{total}");
    }

    #[test]
    fn zero_lifetime_means_zero_operational() {
        let op = OperationalCarbon::new(GridMix::Coal, 10.0, 0.0);
        assert_eq!(op.total(), CarbonMass::ZERO);
    }

    #[test]
    fn cdp_display() {
        let cdp = Cdp::from_fps(CarbonMass::from_grams(10.0), 10.0);
        assert!(cdp.to_string().contains("gCO₂·s"));
    }
}
