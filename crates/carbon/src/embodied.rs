//! The embodied-carbon model: Eq. 1 and Eq. 2 of the paper.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use carma_netlist::{Area, TechNode};

use crate::params::{FabParams, GridMix, SILICON_CFPA_G_PER_CM2};
use crate::wafer::Wafer;
use crate::yield_model::YieldModel;

/// A mass of CO₂-equivalent emissions, stored in grams.
///
/// Newtype so carbon can never be confused with energy or area in the
/// CDP formula chains.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct CarbonMass(f64);

impl CarbonMass {
    /// Zero emissions.
    pub const ZERO: CarbonMass = CarbonMass(0.0);

    /// Creates a mass from grams of CO₂.
    ///
    /// # Panics
    ///
    /// Panics if `grams` is negative or not finite.
    pub fn from_grams(grams: f64) -> Self {
        assert!(
            grams.is_finite() && grams >= 0.0,
            "carbon mass must be ≥ 0, got {grams}"
        );
        CarbonMass(grams)
    }

    /// Creates a mass from kilograms of CO₂.
    ///
    /// # Panics
    ///
    /// Panics if `kg` is negative or not finite.
    pub fn from_kg(kg: f64) -> Self {
        Self::from_grams(kg * 1000.0)
    }

    /// The mass in grams.
    pub fn as_grams(self) -> f64 {
        self.0
    }

    /// The mass in kilograms.
    pub fn as_kg(self) -> f64 {
        self.0 / 1000.0
    }
}

impl Add for CarbonMass {
    type Output = CarbonMass;

    fn add(self, rhs: CarbonMass) -> CarbonMass {
        CarbonMass(self.0 + rhs.0)
    }
}

impl AddAssign for CarbonMass {
    fn add_assign(&mut self, rhs: CarbonMass) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for CarbonMass {
    type Output = CarbonMass;

    fn mul(self, rhs: f64) -> CarbonMass {
        CarbonMass(self.0 * rhs)
    }
}

impl Sum for CarbonMass {
    fn sum<I: Iterator<Item = CarbonMass>>(iter: I) -> CarbonMass {
        iter.fold(CarbonMass::ZERO, Add::add)
    }
}

impl fmt::Display for CarbonMass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.3} kgCO₂", self.as_kg())
        } else {
            write!(f, "{:.2} gCO₂", self.0)
        }
    }
}

/// Itemized embodied-carbon result, exposing the intermediate terms of
/// Eq. 1/2 ([C-INTERMEDIATE]): useful for reports and for checking the
/// model against hand calculations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonBreakdown {
    /// Fabrication yield used in CFPA.
    pub fab_yield: f64,
    /// CFPA of the die, g CO₂/cm² (Eq. 2).
    pub cfpa_g_per_cm2: f64,
    /// Die term of Eq. 1: CFPA × A_die.
    pub die_carbon: CarbonMass,
    /// Wasted-silicon term of Eq. 1: CFPA_Si × A_wasted.
    pub wasted_carbon: CarbonMass,
    /// Wasted wafer area attributed to this die.
    pub wasted_area: Area,
    /// Total embodied carbon (die + wasted terms).
    pub total: CarbonMass,
}

/// The complete embodied-carbon model of one fabrication setup.
///
/// Composes the fab parameters, grid mix, yield model and wafer
/// geometry. [`CarbonModel::for_node`] gives the paper's defaults
/// (Taiwan grid, Murphy yield, 300 mm wafer).
///
/// ```
/// use carma_carbon::CarbonModel;
/// use carma_netlist::{Area, TechNode};
///
/// let m = CarbonModel::for_node(TechNode::N7);
/// let small = m.embodied_carbon(Area::from_mm2(1.0));
/// let large = m.embodied_carbon(Area::from_mm2(10.0));
/// assert!(large.as_grams() > small.as_grams());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonModel {
    /// Per-node fab parameters.
    pub fab: FabParams,
    /// Carbon intensity of the fab's electricity.
    pub grid: GridMix,
    /// Die-yield model.
    pub yield_model: YieldModel,
    /// Wafer geometry for wasted-area accounting.
    pub wafer: Wafer,
}

impl CarbonModel {
    /// The paper's default model for `node`: ACT fab parameters, Taiwan
    /// grid, Murphy yield, 300 mm wafer.
    pub fn for_node(node: TechNode) -> Self {
        CarbonModel {
            fab: FabParams::for_node(node),
            grid: GridMix::default(),
            yield_model: YieldModel::default(),
            wafer: Wafer::default(),
        }
    }

    /// Returns the model with a different grid mix (builder style).
    pub fn with_grid(mut self, grid: GridMix) -> Self {
        self.grid = grid;
        self
    }

    /// Returns the model with a different yield model (builder style).
    pub fn with_yield_model(mut self, yield_model: YieldModel) -> Self {
        self.yield_model = yield_model;
        self
    }

    /// The technology node of this model.
    pub fn node(&self) -> TechNode {
        self.fab.node
    }

    /// Fabrication yield for a die of `area`.
    pub fn fab_yield(&self, area: Area) -> f64 {
        self.yield_model
            .yield_for(area, self.fab.defect_density_per_cm2)
    }

    /// Carbon Footprint Per unit Area of the die, g CO₂/cm² — Eq. 2:
    /// `CFPA = (CI_fab × EPA + C_gas + C_material) / Y`.
    pub fn cfpa_g_per_cm2(&self, area: Area) -> f64 {
        let numerator = self.grid.grams_per_kwh() * self.fab.epa_kwh_per_cm2
            + self.fab.gpa_g_per_cm2
            + self.fab.mpa_g_per_cm2;
        numerator / self.fab_yield(area)
    }

    /// Embodied carbon of a die of `area` — Eq. 1, with full breakdown.
    ///
    /// # Panics
    ///
    /// Panics if the die has zero area or does not fit on the wafer.
    pub fn embodied_breakdown(&self, area: Area) -> CarbonBreakdown {
        let fab_yield = self.fab_yield(area);
        let cfpa = self.cfpa_g_per_cm2(area);
        let die_carbon = CarbonMass::from_grams(cfpa * area.as_cm2());
        let wasted_area = self.wafer.wasted_area_per_die(area);
        let wasted_carbon = CarbonMass::from_grams(SILICON_CFPA_G_PER_CM2 * wasted_area.as_cm2());
        CarbonBreakdown {
            fab_yield,
            cfpa_g_per_cm2: cfpa,
            die_carbon,
            wasted_carbon,
            wasted_area,
            total: die_carbon + wasted_carbon,
        }
    }

    /// Embodied carbon of a die of `area` — Eq. 1 (total only).
    ///
    /// # Panics
    ///
    /// Panics if the die has zero area or does not fit on the wafer.
    pub fn embodied_carbon(&self, area: Area) -> CarbonMass {
        self.embodied_breakdown(area).total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eq2_matches_hand_calculation() {
        // 7 nm, Taiwan grid, tiny die so yield ≈ 1.
        let m = CarbonModel::for_node(TechNode::N7);
        let a = Area::from_mm2(0.01); // 1e-4 cm² → yield ≈ 1
        let cfpa = m.cfpa_g_per_cm2(a);
        let expect = 500.0 * 1.52 + 180.0 + 500.0; // = 1440 g/cm²
        assert!(
            (cfpa - expect).abs() / expect < 1e-3,
            "cfpa {cfpa} vs {expect}"
        );
    }

    #[test]
    fn yield_divisor_raises_cfpa_for_large_dies() {
        let m = CarbonModel::for_node(TechNode::N7);
        let small = m.cfpa_g_per_cm2(Area::from_mm2(1.0));
        let large = m.cfpa_g_per_cm2(Area::from_mm2(400.0));
        assert!(large > small);
    }

    #[test]
    fn breakdown_terms_sum_to_total() {
        let m = CarbonModel::for_node(TechNode::N14);
        let b = m.embodied_breakdown(Area::from_mm2(5.0));
        assert!(
            (b.die_carbon.as_grams() + b.wasted_carbon.as_grams() - b.total.as_grams()).abs()
                < 1e-9
        );
        assert!(b.fab_yield > 0.0 && b.fab_yield <= 1.0);
    }

    #[test]
    fn edge_die_scale_matches_paper_figure() {
        // The paper's Fig. 2 y-axis spans ~0–40 gCO₂ for NVDLA-class
        // edge dies at 7 nm. A few-mm² die must land in single-digit
        // to tens of grams.
        let m = CarbonModel::for_node(TechNode::N7);
        let c = m.embodied_carbon(Area::from_mm2(2.0));
        assert!(
            c.as_grams() > 0.1 && c.as_grams() < 100.0,
            "out of scale: {c}"
        );
    }

    #[test]
    fn renewable_grid_cuts_embodied_carbon() {
        let taiwan = CarbonModel::for_node(TechNode::N7);
        let green = taiwan.with_grid(GridMix::Renewable);
        let a = Area::from_mm2(4.0);
        assert!(green.embodied_carbon(a).as_grams() < taiwan.embodied_carbon(a).as_grams());
    }

    #[test]
    fn per_cm2_cost_higher_at_advanced_nodes() {
        let a = Area::from_mm2(1.0);
        let c7 = CarbonModel::for_node(TechNode::N7).cfpa_g_per_cm2(a);
        let c28 = CarbonModel::for_node(TechNode::N28).cfpa_g_per_cm2(a);
        assert!(c7 > c28);
    }

    #[test]
    fn carbon_mass_arithmetic() {
        let a = CarbonMass::from_grams(10.0);
        let b = CarbonMass::from_kg(0.005);
        assert!(((a + b).as_grams() - 15.0).abs() < 1e-12);
        let mut c = a;
        c += b;
        assert!((c.as_grams() - 15.0).abs() < 1e-12);
        assert!(((a * 2.0).as_grams() - 20.0).abs() < 1e-12);
        let s: CarbonMass = [a, b].into_iter().sum();
        assert!((s.as_grams() - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "carbon mass must be ≥ 0")]
    fn negative_mass_rejected() {
        let _ = CarbonMass::from_grams(-1.0);
    }

    #[test]
    fn display_scales_units() {
        assert!(CarbonMass::from_grams(12.0).to_string().contains("gCO₂"));
        assert!(CarbonMass::from_kg(2.0).to_string().contains("kgCO₂"));
    }

    proptest! {
        #[test]
        fn embodied_carbon_is_monotone_in_area(
            mm2 in 0.5f64..200.0,
            extra in 0.5f64..200.0,
        ) {
            let m = CarbonModel::for_node(TechNode::N7);
            let small = m.embodied_carbon(Area::from_mm2(mm2));
            let large = m.embodied_carbon(Area::from_mm2(mm2 + extra));
            prop_assert!(large > small);
        }

        #[test]
        fn embodied_carbon_is_superlinear_in_area(mm2 in 5.0f64..100.0) {
            // Doubling the die more than doubles the carbon (yield loss
            // + waste): the "exponential carbon increase" trend of the
            // paper's Fig. 2.
            let m = CarbonModel::for_node(TechNode::N7);
            let c1 = m.embodied_carbon(Area::from_mm2(mm2)).as_grams();
            let c2 = m.embodied_carbon(Area::from_mm2(mm2 * 2.0)).as_grams();
            prop_assert!(c2 > 2.0 * c1 * 0.999, "c2 {c2} vs 2·c1 {}", 2.0 * c1);
        }
    }
}
