//! System-level embodied carbon: packaging, DRAM, and the
//! ECO-CHIP-style chiplet decomposition.
//!
//! The paper computes die-level carbon via the ECO-CHIP methodology
//! (Sudarshan et al., HPCA '24), which also prices packaging and
//! multi-die integration. This module extends CARMA's Eq. 1 die model
//! to the full deployed system — an edge module is never a bare die —
//! and provides the chiplet alternative ECO-CHIP advocates: split the
//! accelerator across dies (possibly at different nodes) and pay for
//! an interposer instead of one large monolithic die.

use carma_netlist::{Area, TechNode};

use crate::embodied::{CarbonMass, CarbonModel};
use crate::params::SILICON_CFPA_G_PER_CM2;

/// Embodied carbon of DRAM per gigabyte (ACT-class figure for
/// LPDDR4-generation processes), g CO₂/GB.
pub const DRAM_CARBON_G_PER_GB: f64 = 70.0;

/// Fixed carbon of substrate + assembly for a standard single-die
/// flip-chip package, g CO₂.
pub const PACKAGE_BASE_G: f64 = 48.0;

/// Incremental packaging carbon per die in a multi-die package
/// (placement, bonding, test), g CO₂.
pub const PER_DIE_BONDING_G: f64 = 6.0;

/// Area overhead of a 2.5-D silicon interposer relative to the summed
/// chiplet area.
pub const INTERPOSER_AREA_OVERHEAD: f64 = 1.10;

/// The packaging style of a system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Package {
    /// Single-die flip-chip package.
    Monolithic,
    /// 2.5-D integration on a passive silicon interposer.
    Interposer2_5d,
}

impl Package {
    /// Packaging carbon for `dies` dies with total silicon area
    /// `total_die_area`.
    ///
    /// The interposer is passive silicon (no FEOL processing), priced
    /// at the raw-wafer CFPA over its area.
    pub fn carbon(self, dies: usize, total_die_area: Area) -> CarbonMass {
        let base = CarbonMass::from_grams(PACKAGE_BASE_G);
        let bonding = CarbonMass::from_grams(PER_DIE_BONDING_G * dies as f64);
        match self {
            Package::Monolithic => base + bonding,
            Package::Interposer2_5d => {
                let interposer_area = total_die_area * INTERPOSER_AREA_OVERHEAD;
                let interposer =
                    CarbonMass::from_grams(SILICON_CFPA_G_PER_CM2 * interposer_area.as_cm2());
                base + bonding + interposer
            }
        }
    }
}

/// One die of a (possibly multi-die) system: its fabrication node and
/// area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Die {
    /// Fabrication node of this die.
    pub node: TechNode,
    /// Die area.
    pub area: Area,
}

/// A complete edge-module bill of embodied carbon.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemCarbon {
    /// Per-die embodied carbon (Eq. 1 per die).
    pub dies: Vec<CarbonMass>,
    /// Packaging (substrate, bonding, interposer).
    pub package: CarbonMass,
    /// DRAM devices.
    pub dram: CarbonMass,
}

impl SystemCarbon {
    /// Computes the system carbon of `dies` in `package` with
    /// `dram_gb` gigabytes of external memory.
    ///
    /// Each die is priced with [`CarbonModel::for_node`] at its own
    /// node — the chiplet advantage ECO-CHIP quantifies: only the
    /// compute die needs the (carbon-expensive) advanced node.
    ///
    /// # Panics
    ///
    /// Panics if `dies` is empty or `dram_gb` is negative.
    pub fn of(dies: &[Die], package: Package, dram_gb: f64) -> SystemCarbon {
        assert!(!dies.is_empty(), "a system needs at least one die");
        assert!(dram_gb >= 0.0, "dram_gb must be ≥ 0");
        let die_carbon: Vec<CarbonMass> = dies
            .iter()
            .map(|d| CarbonModel::for_node(d.node).embodied_carbon(d.area))
            .collect();
        let total_area: Area = dies.iter().map(|d| d.area).sum();
        SystemCarbon {
            dies: die_carbon,
            package: package.carbon(dies.len(), total_area),
            dram: CarbonMass::from_grams(DRAM_CARBON_G_PER_GB * dram_gb),
        }
    }

    /// Total embodied carbon of the module.
    pub fn total(&self) -> CarbonMass {
        self.dies.iter().copied().sum::<CarbonMass>() + self.package + self.dram
    }

    /// The silicon (die) share of the total, in `[0, 1]`.
    pub fn silicon_fraction(&self) -> f64 {
        let dies: f64 = self.dies.iter().map(|c| c.as_grams()).sum();
        dies / self.total().as_grams()
    }
}

/// Compares a monolithic implementation against an ECO-CHIP-style
/// split: compute logic on the advanced node, SRAM/IO on a mature
/// node.
///
/// Returns `(monolithic, chiplet)` system carbon for an accelerator
/// whose logic occupies `logic_area` (priced at `logic_node`) and
/// whose memory/periphery occupies `mem_area` (monolithic: same node,
/// scaled by density; chiplet: at `mem_node` directly).
///
/// # Panics
///
/// Panics if any area is zero.
pub fn monolithic_vs_chiplet(
    logic_node: TechNode,
    mem_node: TechNode,
    logic_area: Area,
    mem_area_at_mem_node: Area,
    dram_gb: f64,
) -> (SystemCarbon, SystemCarbon) {
    assert!(
        logic_area.as_um2() > 0.0 && mem_area_at_mem_node.as_um2() > 0.0,
        "areas must be positive"
    );
    // Monolithic: the memory section shrinks by the SRAM density ratio
    // when implemented on the advanced node.
    let density_ratio = mem_node.params().sram_bitcell_um2 / logic_node.params().sram_bitcell_um2;
    let mem_area_at_logic_node = Area::from_um2(mem_area_at_mem_node.as_um2() / density_ratio);
    let mono = SystemCarbon::of(
        &[Die {
            node: logic_node,
            area: logic_area + mem_area_at_logic_node,
        }],
        Package::Monolithic,
        dram_gb,
    );
    let chiplet = SystemCarbon::of(
        &[
            Die {
                node: logic_node,
                area: logic_area,
            },
            Die {
                node: mem_node,
                area: mem_area_at_mem_node,
            },
        ],
        Package::Interposer2_5d,
        dram_gb,
    );
    (mono, chiplet)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die(node: TechNode, mm2: f64) -> Die {
        Die {
            node,
            area: Area::from_mm2(mm2),
        }
    }

    #[test]
    fn totals_add_up() {
        let sys = SystemCarbon::of(&[die(TechNode::N7, 2.0)], Package::Monolithic, 2.0);
        let expect = sys.dies[0] + sys.package + sys.dram;
        assert_eq!(sys.total(), expect);
        assert!((sys.dram.as_grams() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn package_carbon_scales_with_dies() {
        let a = Area::from_mm2(4.0);
        let one = Package::Monolithic.carbon(1, a);
        let two = Package::Monolithic.carbon(2, a);
        assert!((two.as_grams() - one.as_grams() - PER_DIE_BONDING_G).abs() < 1e-9);
    }

    #[test]
    fn interposer_costs_more_than_flip_chip() {
        let a = Area::from_mm2(10.0);
        let mono = Package::Monolithic.carbon(2, a);
        let int = Package::Interposer2_5d.carbon(2, a);
        assert!(int > mono);
    }

    #[test]
    fn dram_dominates_small_edge_dies() {
        // The ACT observation: for edge modules, memory and packaging
        // dwarf the logic die.
        let sys = SystemCarbon::of(&[die(TechNode::N7, 1.0)], Package::Monolithic, 4.0);
        assert!(sys.silicon_fraction() < 0.10, "{}", sys.silicon_fraction());
    }

    #[test]
    fn chiplet_split_saves_carbon_for_sram_heavy_designs() {
        // A large SRAM section implemented at 28 nm (cheap carbon/cm²,
        // but bigger) vs shrunk onto the 7 nm die: ECO-CHIP's headline
        // effect. With CFPA(7nm) ≈ 2.1× CFPA(28nm) and SRAM density
        // ratio ≈ 4.7×, the monolithic integration wins on area but
        // loses on per-area carbon for big SRAM if yield bites; for
        // edge-scale dies the monolithic side typically wins — the
        // comparison must at least run and be self-consistent.
        let (mono, chiplet) = monolithic_vs_chiplet(
            TechNode::N7,
            TechNode::N28,
            Area::from_mm2(2.0),
            Area::from_mm2(20.0),
            0.0,
        );
        assert!(mono.total().as_grams() > 0.0);
        assert!(chiplet.total().as_grams() > 0.0);
        assert_eq!(chiplet.dies.len(), 2);
        assert_eq!(mono.dies.len(), 1);
    }

    #[test]
    fn advanced_node_die_costs_more_per_area() {
        let s7 = SystemCarbon::of(&[die(TechNode::N7, 5.0)], Package::Monolithic, 0.0);
        let s28 = SystemCarbon::of(&[die(TechNode::N28, 5.0)], Package::Monolithic, 0.0);
        assert!(s7.dies[0] > s28.dies[0]);
    }

    #[test]
    #[should_panic(expected = "a system needs at least one die")]
    fn empty_system_rejected() {
        let _ = SystemCarbon::of(&[], Package::Monolithic, 1.0);
    }

    #[test]
    #[should_panic(expected = "dram_gb must be ≥ 0")]
    fn negative_dram_rejected() {
        let _ = SystemCarbon::of(&[die(TechNode::N7, 1.0)], Package::Monolithic, -1.0);
    }
}
