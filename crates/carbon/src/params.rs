//! Fabrication parameters per technology node and grid-mix presets.
//!
//! Values follow the ACT model's published per-node fab
//! characterization (energy per area, direct gas emissions per area,
//! material footprint per area, defect density). They are calibrated
//! approximations of the imec-derived numbers ACT tabulates; DESIGN.md
//! §4 documents the substitution. The qualitative property the paper
//! depends on — *advanced nodes cost more carbon per cm² but need fewer
//! cm²* — is faithfully preserved.

use carma_netlist::TechNode;
use std::fmt;

/// Carbon footprint per cm² of raw silicon wafer (Czochralski growth,
/// slicing, polishing), in grams CO₂ per cm². Used to price the wasted
/// wafer area of Eq. 1 (`CFPA_Si`).
pub const SILICON_CFPA_G_PER_CM2: f64 = 100.0;

/// Per-node fabrication parameters (the ACT fab model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabParams {
    /// The node these parameters describe.
    pub node: TechNode,
    /// Energy consumed per unit area of processed die, kWh/cm² (EPA).
    pub epa_kwh_per_cm2: f64,
    /// Direct greenhouse-gas emissions per area, g CO₂/cm² (C_gas).
    pub gpa_g_per_cm2: f64,
    /// Raw-material procurement footprint per area, g CO₂/cm²
    /// (C_material).
    pub mpa_g_per_cm2: f64,
    /// Defect density D₀, defects/cm² — drives yield.
    pub defect_density_per_cm2: f64,
}

impl FabParams {
    /// The ACT-calibrated parameters for `node`.
    ///
    /// EPA grows toward advanced nodes (more masks, more EUV passes);
    /// defect density also grows (newer process, lower maturity).
    pub fn for_node(node: TechNode) -> Self {
        match node {
            TechNode::N7 => FabParams {
                node,
                epa_kwh_per_cm2: 1.52,
                gpa_g_per_cm2: 180.0,
                mpa_g_per_cm2: 500.0,
                defect_density_per_cm2: 0.13,
            },
            TechNode::N14 => FabParams {
                node,
                epa_kwh_per_cm2: 1.20,
                gpa_g_per_cm2: 148.0,
                mpa_g_per_cm2: 500.0,
                defect_density_per_cm2: 0.09,
            },
            TechNode::N28 => FabParams {
                node,
                epa_kwh_per_cm2: 0.90,
                gpa_g_per_cm2: 105.0,
                mpa_g_per_cm2: 500.0,
                defect_density_per_cm2: 0.07,
            },
        }
    }
}

/// Electricity-grid carbon intensity of the fabrication facility.
///
/// ACT shows fab location dominates CI_fab; these presets span the
/// realistic range and feed the grid-sensitivity ablation
/// (`ablation_grid` bench).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GridMix {
    /// Taiwan grid (where most leading-edge fabs operate), ≈ 500 g/kWh.
    TaiwanGrid,
    /// Mostly-renewable supply contract, ≈ 30 g/kWh.
    Renewable,
    /// Coal-heavy grid, ≈ 820 g/kWh.
    Coal,
    /// World average, ≈ 475 g/kWh.
    WorldAverage,
    /// A custom intensity in g CO₂/kWh.
    Custom(f64),
}

impl GridMix {
    /// Fallible constructor for a custom intensity, rejecting negative
    /// and non-finite values with a descriptive message instead of the
    /// deferred panic in [`GridMix::grams_per_kwh`] — the validation
    /// point the scenario API uses for spec input.
    pub fn try_custom(g_per_kwh: f64) -> Result<GridMix, String> {
        if g_per_kwh.is_finite() && g_per_kwh >= 0.0 {
            Ok(GridMix::Custom(g_per_kwh))
        } else {
            Err(format!(
                "grid carbon intensity must be a finite value ≥ 0 g/kWh (got {g_per_kwh})"
            ))
        }
    }

    /// Carbon intensity in grams CO₂ per kWh.
    ///
    /// # Panics
    ///
    /// Panics if a [`GridMix::Custom`] value is negative or not finite.
    pub fn grams_per_kwh(self) -> f64 {
        match self {
            GridMix::TaiwanGrid => 500.0,
            GridMix::Renewable => 30.0,
            GridMix::Coal => 820.0,
            GridMix::WorldAverage => 475.0,
            GridMix::Custom(v) => {
                assert!(v.is_finite() && v >= 0.0, "carbon intensity must be ≥ 0");
                v
            }
        }
    }
}

impl Default for GridMix {
    /// The paper's implicit default: a leading-edge fab on the Taiwan
    /// grid.
    fn default() -> Self {
        GridMix::TaiwanGrid
    }
}

impl std::str::FromStr for GridMix {
    type Err = String;

    /// Parses the preset spellings [`Display`](fmt::Display) emits
    /// (`taiwan-grid`, `renewable`, `coal`, `world-average`). Custom
    /// intensities are numeric, not named — build them with
    /// [`GridMix::try_custom`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "taiwan-grid" | "taiwan" => Ok(GridMix::TaiwanGrid),
            "renewable" => Ok(GridMix::Renewable),
            "coal" => Ok(GridMix::Coal),
            "world-average" | "world" => Ok(GridMix::WorldAverage),
            other => Err(format!(
                "unknown grid mix `{other}` (known: taiwan-grid, renewable, coal, \
                 world-average, or a custom g/kWh value)"
            )),
        }
    }
}

impl fmt::Display for GridMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridMix::TaiwanGrid => write!(f, "taiwan-grid"),
            GridMix::Renewable => write!(f, "renewable"),
            GridMix::Coal => write!(f, "coal"),
            GridMix::WorldAverage => write!(f, "world-average"),
            GridMix::Custom(v) => write!(f, "custom({v} g/kWh)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epa_grows_toward_advanced_nodes() {
        let e7 = FabParams::for_node(TechNode::N7).epa_kwh_per_cm2;
        let e14 = FabParams::for_node(TechNode::N14).epa_kwh_per_cm2;
        let e28 = FabParams::for_node(TechNode::N28).epa_kwh_per_cm2;
        assert!(e7 > e14 && e14 > e28);
    }

    #[test]
    fn defect_density_grows_toward_advanced_nodes() {
        let d7 = FabParams::for_node(TechNode::N7).defect_density_per_cm2;
        let d28 = FabParams::for_node(TechNode::N28).defect_density_per_cm2;
        assert!(d7 > d28);
    }

    #[test]
    fn grid_presets_span_realistic_range() {
        assert!(GridMix::Renewable.grams_per_kwh() < GridMix::WorldAverage.grams_per_kwh());
        assert!(GridMix::WorldAverage.grams_per_kwh() < GridMix::Coal.grams_per_kwh());
        assert_eq!(GridMix::Custom(123.0).grams_per_kwh(), 123.0);
    }

    #[test]
    #[should_panic(expected = "carbon intensity must be ≥ 0")]
    fn negative_custom_intensity_rejected() {
        let _ = GridMix::Custom(-1.0).grams_per_kwh();
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(GridMix::TaiwanGrid.to_string(), "taiwan-grid");
        assert_eq!(GridMix::Custom(10.0).to_string(), "custom(10 g/kWh)");
    }

    #[test]
    fn default_is_taiwan() {
        assert_eq!(GridMix::default(), GridMix::TaiwanGrid);
    }
}
