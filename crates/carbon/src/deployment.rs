//! Deployment scenarios and the total-carbon footprint.
//!
//! The paper optimizes embodied carbon because for edge ML it *"now
//! surpasses operational emissions"* — but whether that crossover
//! actually happens depends on where and how long the module is
//! deployed. A [`DeploymentProfile`] captures that context (grid mix
//! at the deployment site, lifetime, duty cycle, packaging, external
//! DRAM) and composes the existing [`SystemCarbon`] and
//! [`OperationalCarbon`](crate::OperationalCarbon) models into one
//! [`FootprintBreakdown`]: die embodied + system embodied +
//! operational = total.
//!
//! ```
//! use carma_carbon::{CarbonModel, DeploymentProfile};
//! use carma_netlist::{Area, TechNode};
//!
//! let die_area = Area::from_mm2(2.0);
//! let die = CarbonModel::for_node(TechNode::N7).embodied_carbon(die_area);
//! let profile = DeploymentProfile::edge_default(); // 3 y, world grid
//! let fb = profile.footprint(die, die_area, 2.0 /* W when active */);
//! assert!((fb.total().as_grams()
//!     - (fb.die + fb.system + fb.operational).as_grams()).abs() < 1e-9);
//! ```

use std::fmt;

use carma_netlist::Area;

use crate::embodied::CarbonMass;
use crate::metrics::OperationalCarbon;
use crate::params::GridMix;
use crate::system::{Package, DRAM_CARBON_G_PER_GB};

/// Default deployed lifetime: three years of wall-clock hours.
pub const DEFAULT_LIFETIME_HOURS: f64 = 3.0 * 365.0 * 24.0;

/// Default external memory of an edge inference module, GB.
pub const DEFAULT_DRAM_GB: f64 = 2.0;

/// Where and how an accelerator module is deployed: everything the
/// total-carbon footprint needs beyond the die itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentProfile {
    /// Carbon intensity of the deployment site's electricity (not the
    /// fab's — that one lives in [`CarbonModel`](crate::CarbonModel)).
    pub grid: GridMix,
    /// Deployed lifetime in wall-clock hours.
    pub lifetime_hours: f64,
    /// Active duty cycle in `[0, 1]`: the fraction of the lifetime the
    /// module spends inferring (1.0 = always-on camera, ~0.0007 =
    /// once-a-minute sensor wake-up).
    pub utilization: f64,
    /// Packaging style of the module.
    pub package: Package,
    /// External DRAM capacity, GB.
    pub dram_gb: f64,
}

impl DeploymentProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `lifetime_hours` or `dram_gb` is negative or not
    /// finite, or `utilization` is outside `[0, 1]`. The scenario API
    /// validates spec input before reaching this constructor.
    pub fn new(
        grid: GridMix,
        lifetime_hours: f64,
        utilization: f64,
        package: Package,
        dram_gb: f64,
    ) -> Self {
        assert!(
            lifetime_hours.is_finite() && lifetime_hours >= 0.0,
            "lifetime_hours must be ≥ 0, got {lifetime_hours}"
        );
        assert!(
            utilization.is_finite() && (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1], got {utilization}"
        );
        assert!(
            dram_gb.is_finite() && dram_gb >= 0.0,
            "dram_gb must be ≥ 0, got {dram_gb}"
        );
        DeploymentProfile {
            grid,
            lifetime_hours,
            utilization,
            package,
            dram_gb,
        }
    }

    /// The default edge deployment: always-on module on the
    /// world-average grid for three years, monolithic flip-chip
    /// package, 2 GB LPDDR.
    pub fn edge_default() -> Self {
        DeploymentProfile::new(
            GridMix::WorldAverage,
            DEFAULT_LIFETIME_HOURS,
            1.0,
            Package::Monolithic,
            DEFAULT_DRAM_GB,
        )
    }

    /// Returns the profile with a different deployment grid (builder
    /// style).
    #[must_use]
    pub fn with_grid(mut self, grid: GridMix) -> Self {
        self.grid = grid;
        self
    }

    /// Returns the profile with a different lifetime (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `hours` is negative or not finite.
    #[must_use]
    pub fn with_lifetime_hours(self, hours: f64) -> Self {
        DeploymentProfile::new(
            self.grid,
            hours,
            self.utilization,
            self.package,
            self.dram_gb,
        )
    }

    /// Returns the profile with a different duty cycle (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    #[must_use]
    pub fn with_utilization(self, utilization: f64) -> Self {
        DeploymentProfile::new(
            self.grid,
            self.lifetime_hours,
            utilization,
            self.package,
            self.dram_gb,
        )
    }

    /// The full-lifecycle footprint of a module around one die whose
    /// embodied carbon (`die_embodied`, from Eq. 1 at the fab) and area
    /// are already known, drawing `active_power_w` watts while
    /// inferring.
    ///
    /// System embodied carbon (package + DRAM) comes from the
    /// [`SystemCarbon`](crate::SystemCarbon) model's pricing rules
    /// ([`Package::carbon`] and [`DRAM_CARBON_G_PER_GB`]), composed
    /// allocation-free because this sits on the GA's total-carbon
    /// fitness hot path; use-phase emissions from [`OperationalCarbon`]
    /// at the utilization-scaled average power.
    pub fn footprint(
        &self,
        die_embodied: CarbonMass,
        die_area: Area,
        active_power_w: f64,
    ) -> FootprintBreakdown {
        let system = self.package.carbon(1, die_area)
            + CarbonMass::from_grams(DRAM_CARBON_G_PER_GB * self.dram_gb);
        let operational = OperationalCarbon::new(
            self.grid,
            active_power_w * self.utilization,
            self.lifetime_hours,
        );
        FootprintBreakdown {
            die: die_embodied,
            system,
            operational: operational.total(),
        }
    }

    /// The deployed lifetime (hours) at which use-phase emissions
    /// overtake the embodied bill `embodied`, for a module drawing
    /// `active_power_w` when active at this profile's utilization and
    /// grid.
    ///
    /// `None` is the documented sentinel for "the use phase never
    /// catches up": operational emissions never accrue (zero or
    /// non-finite power, zero utilization, a zero-carbon grid), or the
    /// accrual rate is so close to zero that the crossover lifetime
    /// overflows `f64` — an embodied-dominated-forever deployment.
    /// The result, when present, is always finite and ≥ 0.
    pub fn crossover_hours(&self, embodied: CarbonMass, active_power_w: f64) -> Option<f64> {
        let g_per_hour = active_power_w * self.utilization / 1000.0 * self.grid.grams_per_kwh();
        if !g_per_hour.is_finite() || g_per_hour <= 0.0 {
            // Covers NaN and ±inf (non-finite power inputs) as well
            // as zero and negative rates — an infinite accrual rate
            // is a degenerate input, not an instant crossover.
            return None;
        }
        let hours = embodied.as_grams() / g_per_hour;
        // A subnormal rate under a macroscopic embodied bill divides
        // toward infinity; report "never" rather than a non-finite
        // lifetime no caller can render or compare.
        hours.is_finite().then_some(hours)
    }
}

impl Default for DeploymentProfile {
    fn default() -> Self {
        DeploymentProfile::edge_default()
    }
}

impl fmt::Display for DeploymentProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} grid, {:.0} h @ {:.0} % duty, {:?} package, {} GB DRAM",
            self.grid,
            self.lifetime_hours,
            self.utilization * 100.0,
            self.package,
            self.dram_gb
        )
    }
}

/// The total-carbon bill of one deployed module, itemized into the
/// three lifecycle buckets the paper's motivation compares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FootprintBreakdown {
    /// Embodied carbon of the accelerator die (Eq. 1 at the fab).
    pub die: CarbonMass,
    /// Embodied carbon of the rest of the module: packaging + DRAM.
    pub system: CarbonMass,
    /// Use-phase emissions over the deployed lifetime.
    pub operational: CarbonMass,
}

impl FootprintBreakdown {
    /// Total embodied carbon (die + system).
    pub fn embodied(&self) -> CarbonMass {
        self.die + self.system
    }

    /// Total lifecycle carbon: die + system + operational.
    pub fn total(&self) -> CarbonMass {
        self.die + self.system + self.operational
    }

    /// Operational share of the total, in `[0, 1]` (0 for an all-zero
    /// breakdown).
    pub fn operational_share(&self) -> f64 {
        let total = self.total().as_grams();
        if total > 0.0 {
            self.operational.as_grams() / total
        } else {
            0.0
        }
    }

    /// Whether embodied carbon exceeds use-phase emissions — the
    /// paper's motivating claim for edge ML.
    pub fn embodied_dominates(&self) -> bool {
        self.embodied() > self.operational
    }
}

impl fmt::Display for FootprintBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "die {} + system {} + operational {} = {}",
            self.die,
            self.system,
            self.operational,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embodied::CarbonModel;
    use crate::system::DRAM_CARBON_G_PER_GB;
    use carma_netlist::TechNode;
    use proptest::prelude::*;

    fn die() -> (CarbonMass, Area) {
        let area = Area::from_mm2(2.0);
        (
            CarbonModel::for_node(TechNode::N7).embodied_carbon(area),
            area,
        )
    }

    #[test]
    fn total_is_sum_of_parts() {
        let (carbon, area) = die();
        let fb = DeploymentProfile::edge_default().footprint(carbon, area, 2.0);
        assert_eq!(fb.total(), fb.die + fb.system + fb.operational);
        assert_eq!(fb.embodied(), fb.die + fb.system);
        assert_eq!(fb.die, carbon, "die bucket is the priced die, untouched");
    }

    #[test]
    fn system_bucket_composes_package_and_dram() {
        let (carbon, area) = die();
        let profile = DeploymentProfile::edge_default();
        let fb = profile.footprint(carbon, area, 2.0);
        let expect = Package::Monolithic.carbon(1, area)
            + CarbonMass::from_grams(DRAM_CARBON_G_PER_GB * profile.dram_gb);
        assert_eq!(fb.system, expect);
    }

    #[test]
    fn operational_bucket_matches_operational_model() {
        let (carbon, area) = die();
        let profile = DeploymentProfile::edge_default().with_utilization(0.25);
        let fb = profile.footprint(carbon, area, 2.0);
        let expect =
            OperationalCarbon::new(profile.grid, 2.0 * 0.25, profile.lifetime_hours).total();
        assert_eq!(fb.operational, expect);
    }

    #[test]
    fn zero_utilization_zeroes_operational() {
        let (carbon, area) = die();
        let fb = DeploymentProfile::edge_default()
            .with_utilization(0.0)
            .footprint(carbon, area, 5.0);
        assert_eq!(fb.operational, CarbonMass::ZERO);
        assert!(fb.embodied_dominates());
        assert_eq!(fb.operational_share(), 0.0);
    }

    #[test]
    fn crossover_balances_embodied_and_operational() {
        let (carbon, area) = die();
        let profile = DeploymentProfile::edge_default();
        let fb0 = profile
            .with_lifetime_hours(0.0)
            .footprint(carbon, area, 2.0);
        let cross = profile
            .crossover_hours(fb0.embodied(), 2.0)
            .expect("positive power on a carbon-emitting grid");
        let at_cross = profile
            .with_lifetime_hours(cross)
            .footprint(carbon, area, 2.0);
        let (e, o) = (
            at_cross.embodied().as_grams(),
            at_cross.operational.as_grams(),
        );
        assert!((e - o).abs() / e < 1e-9, "embodied {e} vs operational {o}");
    }

    #[test]
    fn crossover_none_without_emissions() {
        let (carbon, _) = die();
        let p = DeploymentProfile::edge_default();
        assert_eq!(p.crossover_hours(carbon, 0.0), None);
        assert_eq!(p.with_utilization(0.0).crossover_hours(carbon, 2.0), None);
        assert_eq!(
            p.with_grid(GridMix::Custom(0.0))
                .crossover_hours(carbon, 2.0),
            None
        );
    }

    #[test]
    fn crossover_sentinel_for_near_zero_operational_intensity() {
        // A subnormal accrual rate (tiny power × tiny grid intensity)
        // under a macroscopic embodied bill would divide to +inf; the
        // documented sentinel for "embodied dominates forever" is None,
        // never a non-finite number.
        let p = DeploymentProfile::edge_default().with_grid(GridMix::Custom(1e-300));
        let big = CarbonMass::from_grams(1e12);
        assert_eq!(p.crossover_hours(big, 1e-12), None);
        // A merely-small (normal) rate still yields a finite, huge
        // crossover rather than the sentinel.
        let small_rate = DeploymentProfile::edge_default().with_grid(GridMix::Custom(1e-6));
        let h = small_rate
            .crossover_hours(CarbonMass::from_grams(1.0), 1.0)
            .expect("normal rate crosses eventually");
        assert!(h.is_finite() && h > 0.0);
    }

    #[test]
    fn crossover_sentinel_for_degenerate_power_inputs() {
        let (carbon, _) = die();
        let p = DeploymentProfile::edge_default();
        // Non-finite or negative draw can come from an unvalidated
        // caller; every degenerate case maps to the sentinel.
        assert_eq!(p.crossover_hours(carbon, f64::NAN), None);
        assert_eq!(p.crossover_hours(carbon, f64::INFINITY * 0.0), None);
        // An infinite draw at nonzero utilization gives an infinite
        // accrual rate — still the sentinel, not Some(0.0).
        assert_eq!(p.crossover_hours(carbon, f64::INFINITY), None);
        assert_eq!(p.crossover_hours(carbon, -2.0), None);
        // Utilization 0 composed with the degenerate inputs too.
        let idle = p.with_utilization(0.0);
        assert_eq!(idle.crossover_hours(carbon, f64::NAN), None);
        assert_eq!(idle.crossover_hours(carbon, f64::INFINITY), None);
    }

    #[test]
    fn crossover_zero_embodied_crosses_immediately() {
        // With no embodied bill the use phase leads from hour zero:
        // the crossover is 0, not the "never" sentinel.
        let p = DeploymentProfile::edge_default();
        assert_eq!(p.crossover_hours(CarbonMass::ZERO, 2.0), Some(0.0));
    }

    proptest! {
        #[test]
        fn crossover_is_finite_nonnegative_or_none(
            embodied_g in 0.0f64..1e15,
            // Exponent sampling spans kW draws down through subnormal
            // rates to exact underflow-to-zero — the full degenerate
            // surface the sentinel guards.
            power_exp in -340.0f64..3.0,
            util in 0.0f64..1.0,
            ci_exp in -340.0f64..4.0,
        ) {
            let power = 10f64.powf(power_exp);
            let ci = 10f64.powf(ci_exp);
            let p = DeploymentProfile::edge_default()
                .with_utilization(util)
                .with_grid(GridMix::Custom(ci));
            if let Some(h) = p.crossover_hours(CarbonMass::from_grams(embodied_g), power) {
                prop_assert!(h.is_finite() && h >= 0.0, "got {h}");
            }
        }
    }

    #[test]
    fn display_is_informative() {
        let p = DeploymentProfile::edge_default();
        assert!(p.to_string().contains("world-average"), "{p}");
        let (carbon, area) = die();
        let fb = p.footprint(carbon, area, 2.0);
        assert!(fb.to_string().contains("operational"), "{fb}");
    }

    #[test]
    #[should_panic(expected = "utilization must be in [0, 1]")]
    fn out_of_range_utilization_rejected() {
        let _ = DeploymentProfile::edge_default().with_utilization(1.5);
    }

    #[test]
    #[should_panic(expected = "lifetime_hours must be ≥ 0")]
    fn negative_lifetime_rejected() {
        let _ = DeploymentProfile::edge_default().with_lifetime_hours(-1.0);
    }

    proptest! {
        #[test]
        fn operational_scales_linearly_in_lifetime(
            hours in 1.0f64..100_000.0,
            k in 1.0f64..8.0,
            power in 0.1f64..20.0,
        ) {
            let (carbon, area) = die();
            let base = DeploymentProfile::edge_default();
            let one = base.with_lifetime_hours(hours).footprint(carbon, area, power);
            let scaled = base.with_lifetime_hours(hours * k).footprint(carbon, area, power);
            let expect = one.operational.as_grams() * k;
            let got = scaled.operational.as_grams();
            prop_assert!(
                (got - expect).abs() / expect < 1e-12,
                "operational not linear: {got} vs {expect}"
            );
            // Embodied buckets are lifetime-invariant.
            prop_assert_eq!(one.die, scaled.die);
            prop_assert_eq!(one.system, scaled.system);
        }

        #[test]
        fn total_never_below_any_part(
            hours in 0.0f64..100_000.0,
            util in 0.0f64..1.0,
            power in 0.0f64..20.0,
        ) {
            let (carbon, area) = die();
            let fb = DeploymentProfile::edge_default()
                .with_lifetime_hours(hours)
                .with_utilization(util)
                .footprint(carbon, area, power);
            let total = fb.total();
            prop_assert!(total >= fb.die && total >= fb.system && total >= fb.operational);
            prop_assert!((0.0..=1.0).contains(&fb.operational_share()));
        }
    }
}
