//! Metric-monotonicity contract for `carma_carbon`: the embodied
//! carbon model must never reward a *larger* die with *less* carbon —
//! the ordering the whole CDP optimization relies on.

use carma_carbon::{CarbonModel, Cdp, GridMix, YieldModel};
use carma_netlist::{Area, TechNode};

/// Dense sweep of die areas spanning edge dies to reticle-limit dies.
fn area_ladder() -> Vec<Area> {
    let mut mm2 = 0.05f64;
    let mut areas = Vec::new();
    while mm2 < 700.0 {
        areas.push(Area::from_mm2(mm2));
        mm2 *= 1.35;
    }
    areas
}

#[test]
fn embodied_carbon_is_monotone_in_die_area_at_every_node() {
    for node in TechNode::ALL {
        let model = CarbonModel::for_node(node);
        let mut last = 0.0;
        for area in area_ladder() {
            let c = model.embodied_carbon(area).as_grams();
            assert!(
                c >= last,
                "{node}: area {} mm² gives {c} g, below smaller die's {last} g",
                area.as_mm2()
            );
            last = c;
        }
    }
}

#[test]
fn monotonicity_survives_yield_model_choice() {
    // Yield drops superlinearly with area; the per-die carbon must
    // still increase under every yield model (the yield divisor can
    // never overcompensate).
    for ym in [
        YieldModel::Poisson,
        YieldModel::Murphy,
        YieldModel::NegativeBinomial { alpha: 3.0 },
    ] {
        let model = CarbonModel::for_node(TechNode::N7).with_yield_model(ym);
        let mut last = 0.0;
        for area in area_ladder() {
            let c = model.embodied_carbon(area).as_grams();
            assert!(c >= last, "{ym:?}: non-monotone at {} mm²", area.as_mm2());
            last = c;
        }
    }
}

#[test]
fn monotonicity_survives_grid_mix() {
    for grid in [GridMix::TaiwanGrid, GridMix::Renewable] {
        let model = CarbonModel::for_node(TechNode::N7).with_grid(grid);
        let mut last = 0.0;
        for area in area_ladder() {
            let c = model.embodied_carbon(area).as_grams();
            assert!(c >= last, "{grid:?}: non-monotone at {} mm²", area.as_mm2());
            last = c;
        }
    }
}

#[test]
fn strictly_larger_die_never_cheaper_pairwise() {
    // Pairwise variant over a coarse grid: every strictly larger die
    // must cost at least as much as every smaller one.
    let model = CarbonModel::for_node(TechNode::N14);
    let areas = area_ladder();
    let carbons: Vec<f64> = areas
        .iter()
        .map(|&a| model.embodied_carbon(a).as_grams())
        .collect();
    for i in 0..areas.len() {
        for j in (i + 1)..areas.len() {
            assert!(
                carbons[j] >= carbons[i],
                "{} mm² ({today} g) cheaper than {} mm² ({prev} g)",
                areas[j].as_mm2(),
                areas[i].as_mm2(),
                today = carbons[j],
                prev = carbons[i],
            );
        }
    }
}

#[test]
fn cdp_is_monotone_in_both_factors() {
    let model = CarbonModel::for_node(TechNode::N7);
    let small = model.embodied_carbon(Area::from_mm2(1.0));
    let large = model.embodied_carbon(Area::from_mm2(4.0));
    // More carbon at equal delay → worse CDP.
    assert!(Cdp::new(large, 0.025).value() > Cdp::new(small, 0.025).value());
    // More delay at equal carbon → worse CDP.
    assert!(Cdp::new(small, 0.050).value() > Cdp::new(small, 0.025).value());
    // FPS constructor matches the delay constructor.
    let a = Cdp::from_fps(small, 40.0);
    let b = Cdp::new(small, 1.0 / 40.0);
    assert!((a.value() - b.value()).abs() < 1e-12);
}
