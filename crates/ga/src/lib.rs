//! # carma-ga
//!
//! Genetic-algorithm toolkit used twice by the CARMA flow:
//!
//! 1. **NSGA-II** ([`nsga2`]) drives the multi-objective search for
//!    near-Pareto-optimal approximate multipliers (area vs. error),
//!    mirroring the genetic netlist-approximation flow the paper cites.
//! 2. **Constrained single-objective GA** ([`ga`]) is the paper's
//!    "genetic algorithm with CDP metric as fitness function",
//!    constrained by minimum FPS and maximum accuracy drop.
//!
//! Both engines are generic over a user-supplied problem trait, fully
//! deterministic given a seed, and free of global state.
//!
//! ## Example
//!
//! Minimize a sphere function:
//!
//! ```
//! use carma_ga::{Evaluation, GaConfig, GeneticAlgorithm, Problem};
//! use rand::RngExt;
//!
//! struct Sphere;
//!
//! impl Problem for Sphere {
//!     type Genome = Vec<f64>;
//!
//!     fn random_genome(&self, rng: &mut dyn rand::Rng) -> Vec<f64> {
//!         (0..4).map(|_| rng.random_range(-5.0..5.0)).collect()
//!     }
//!     fn crossover(&self, a: &Vec<f64>, b: &Vec<f64>, rng: &mut dyn rand::Rng) -> Vec<f64> {
//!         a.iter().zip(b).map(|(&x, &y)| if rng.random_bool(0.5) { x } else { y }).collect()
//!     }
//!     fn mutate(&self, g: &mut Vec<f64>, rng: &mut dyn rand::Rng) {
//!         let i = rng.random_range(0..g.len());
//!         g[i] += rng.random_range(-0.5..0.5);
//!     }
//!     fn evaluate(&self, g: &Vec<f64>) -> Evaluation {
//!         Evaluation::feasible(g.iter().map(|x| x * x).sum())
//!     }
//! }
//!
//! let best = GeneticAlgorithm::new(Sphere, GaConfig::default().with_seed(7)).run();
//! assert!(best.evaluation.objective < 0.5);
//! ```

pub mod baseline;
pub mod ga;
pub mod nsga2;

pub use baseline::{front_hypervolume, hypervolume_2d, random_search};
pub use ga::{par_evaluate, Evaluation, GaConfig, GaStats, GeneticAlgorithm, Individual, Problem};
pub use nsga2::{
    crowding_distance, fast_non_dominated_sort, par_evaluate_multi, MultiObjectiveProblem, Nsga2,
    Nsga2Config, ParetoIndividual,
};
