//! Search baselines and front-quality indicators.
//!
//! A genetic algorithm earns its complexity only if it beats naive
//! search at equal evaluation budget; [`random_search`] provides that
//! reference (used by the `ablation_search` bench). [`hypervolume_2d`]
//! scores NSGA-II fronts so library-generation quality can be tracked
//! quantitatively.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ga::{Individual, Problem};
use crate::nsga2::ParetoIndividual;

/// Uniform random search: draws `budget` random genomes and returns
/// the best by the feasibility rule — the same interface contract as
/// [`GeneticAlgorithm::run`](crate::GeneticAlgorithm::run) at an equal
/// evaluation budget.
///
/// # Panics
///
/// Panics if `budget` is zero.
pub fn random_search<P: Problem>(problem: &P, budget: usize, seed: u64) -> Individual<P::Genome> {
    assert!(budget > 0, "budget must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<Individual<P::Genome>> = None;
    for _ in 0..budget {
        let genome = problem.random_genome(&mut rng);
        let evaluation = problem.evaluate(&genome);
        let better = match &best {
            None => true,
            Some(b) => evaluation.better_than(&b.evaluation),
        };
        if better {
            best = Some(Individual { genome, evaluation });
        }
    }
    best.expect("budget ≥ 1 guarantees a candidate")
}

/// 2-D hypervolume (area dominated by the front, bounded by
/// `reference`), for minimization problems. Larger is better.
///
/// Points not dominating the reference contribute nothing.
///
/// # Panics
///
/// Panics if any objective vector is not 2-dimensional.
///
/// # Example
///
/// ```
/// use carma_ga::baseline::hypervolume_2d;
///
/// let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
/// let hv = hypervolume_2d(&front, [4.0, 4.0]);
/// // (4−1)·(4−3) + (4−2)·(3−2) + (4−3)·(2−1) = 3 + 2 + 1 = 6.
/// assert!((hv - 6.0).abs() < 1e-12);
/// ```
pub fn hypervolume_2d(front: &[Vec<f64>], reference: [f64; 2]) -> f64 {
    for p in front {
        assert_eq!(p.len(), 2, "hypervolume_2d needs 2-D objectives");
    }
    // Keep the points strictly dominating the reference, sorted by the
    // first objective.
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .filter(|p| p[0] < reference[0] && p[1] < reference[1])
        .map(|p| (p[0], p[1]))
        .collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    // Sweep left→right, accumulating the staircase area above each
    // point up to the best (lowest) second objective seen so far.
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for (x, y) in pts {
        if y < prev_y {
            hv += (reference[0] - x) * (prev_y - y);
            prev_y = y;
        }
    }
    hv
}

/// Convenience: hypervolume of a [`ParetoIndividual`] front.
pub fn front_hypervolume<G>(front: &[ParetoIndividual<G>], reference: [f64; 2]) -> f64 {
    let objs: Vec<Vec<f64>> = front.iter().map(|p| p.objectives.clone()).collect();
    hypervolume_2d(&objs, reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::Evaluation;
    use rand::{Rng, RngExt};

    struct Quadratic;

    impl Problem for Quadratic {
        type Genome = f64;

        fn random_genome(&self, rng: &mut dyn Rng) -> f64 {
            rng.random_range(-10.0..10.0)
        }

        fn crossover(&self, a: &f64, b: &f64, _rng: &mut dyn Rng) -> f64 {
            (a + b) / 2.0
        }

        fn mutate(&self, g: &mut f64, rng: &mut dyn Rng) {
            *g += rng.random_range(-1.0..1.0);
        }

        fn evaluate(&self, g: &f64) -> Evaluation {
            Evaluation::feasible((g - 2.0) * (g - 2.0))
        }
    }

    #[test]
    fn random_search_finds_decent_solutions() {
        let best = random_search(&Quadratic, 2000, 42);
        assert!(
            (best.genome - 2.0).abs() < 0.3,
            "random search too far off: {}",
            best.genome
        );
    }

    #[test]
    fn random_search_is_deterministic() {
        let a = random_search(&Quadratic, 100, 7).genome;
        let b = random_search(&Quadratic, 100, 7).genome;
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn ga_beats_random_search_at_equal_budget() {
        use crate::ga::{GaConfig, GeneticAlgorithm};
        let budget = 600;
        let cfg = GaConfig {
            population: 20,
            generations: budget / 20 - 1,
            ..GaConfig::default()
        }
        .with_seed(3);
        let ga_best = GeneticAlgorithm::new(Quadratic, cfg).run();
        let rs_best = random_search(&Quadratic, budget, 3);
        assert!(
            ga_best.evaluation.objective <= rs_best.evaluation.objective,
            "GA {} should beat random {}",
            ga_best.evaluation.objective,
            rs_best.evaluation.objective
        );
    }

    #[test]
    fn hypervolume_of_single_point() {
        let hv = hypervolume_2d(&[vec![1.0, 1.0]], [3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_add_nothing() {
        let alone = hypervolume_2d(&[vec![1.0, 1.0]], [4.0, 4.0]);
        let with_dominated = hypervolume_2d(&[vec![1.0, 1.0], vec![2.0, 2.0]], [4.0, 4.0]);
        assert!((alone - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn points_outside_reference_ignored() {
        let hv = hypervolume_2d(&[vec![5.0, 5.0]], [4.0, 4.0]);
        assert_eq!(hv, 0.0);
    }

    #[test]
    fn better_fronts_have_larger_hypervolume() {
        let weak = vec![vec![2.0, 2.0]];
        let strong = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let r = [4.0, 4.0];
        assert!(hypervolume_2d(&strong, r) > hypervolume_2d(&weak, r));
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = random_search(&Quadratic, 0, 1);
    }
}
