//! Constrained single-objective generational GA.
//!
//! This is the engine behind the paper's GA-CDP flow: tournament
//! selection under Deb's feasibility rule, uniform crossover via the
//! problem's own operator, per-offspring mutation, and elitism.
//!
//! Constraints are expressed through [`Evaluation::violation`]: a
//! feasible individual always beats an infeasible one; two infeasible
//! individuals compare by total violation. This matches how the paper
//! treats the minimum-FPS and maximum-accuracy-drop thresholds.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// The outcome of evaluating one genome: an objective to *minimize*
/// plus an aggregate constraint violation (0 when feasible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Objective value; smaller is better.
    pub objective: f64,
    /// Total constraint violation; 0.0 means feasible.
    pub violation: f64,
}

impl Evaluation {
    /// A feasible evaluation with the given objective.
    pub fn feasible(objective: f64) -> Self {
        Evaluation {
            objective,
            violation: 0.0,
        }
    }

    /// An evaluation carrying constraint violation (clamped to ≥ 0).
    pub fn with_violation(objective: f64, violation: f64) -> Self {
        Evaluation {
            objective,
            violation: violation.max(0.0),
        }
    }

    /// Whether this evaluation satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.violation <= 0.0
    }

    /// Deb's feasibility-rule comparison: returns `true` if `self` is
    /// strictly better than `other`.
    pub fn better_than(&self, other: &Evaluation) -> bool {
        match (self.is_feasible(), other.is_feasible()) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => self.objective < other.objective,
            (false, false) => self.violation < other.violation,
        }
    }
}

/// A problem definition for the single-objective GA.
///
/// Implementors supply genome sampling, variation operators and the
/// fitness function. The engine never inspects genomes directly, so any
/// `Clone` type works.
pub trait Problem {
    /// The genome representation.
    type Genome: Clone;

    /// Samples a random genome.
    fn random_genome(&self, rng: &mut dyn Rng) -> Self::Genome;

    /// Recombines two parents into one offspring.
    fn crossover(&self, a: &Self::Genome, b: &Self::Genome, rng: &mut dyn Rng) -> Self::Genome;

    /// Mutates a genome in place.
    fn mutate(&self, genome: &mut Self::Genome, rng: &mut dyn Rng);

    /// Evaluates a genome (objective is minimized).
    fn evaluate(&self, genome: &Self::Genome) -> Evaluation;

    /// Evaluates a whole batch of genomes (one generation's offspring
    /// or the initial population). The engine routes **all** fitness
    /// evaluation through this method, so overriding it is the single
    /// hook for parallel evaluation — e.g. via
    /// [`par_evaluate`](crate::par_evaluate), which fans the batch out
    /// over the `carma-exec` pool.
    ///
    /// The default implementation is the serial loop; overrides must
    /// return results in input order and be pure per genome, so that
    /// batch evaluation is bit-identical to the serial path.
    fn evaluate_batch(&self, genomes: &[Self::Genome]) -> Vec<Evaluation> {
        genomes.iter().map(|g| self.evaluate(g)).collect()
    }
}

/// Parallel [`Problem::evaluate_batch`] building block: evaluates the
/// batch on the `carma-exec` pool, preserving input order. Problems
/// whose `evaluate` is pure and `Sync` implement batch parallelism as
///
/// ```ignore
/// fn evaluate_batch(&self, genomes: &[Self::Genome]) -> Vec<Evaluation> {
///     carma_ga::par_evaluate(self, genomes)
/// }
/// ```
///
/// Results are bit-identical to the serial default at any
/// `CARMA_THREADS` setting (see the `carma-exec` determinism
/// contract).
pub fn par_evaluate<P>(problem: &P, genomes: &[P::Genome]) -> Vec<Evaluation>
where
    P: Problem + Sync + ?Sized,
    P::Genome: Sync,
{
    carma_exec::par_map(genomes, |g| problem.evaluate(g))
}

/// Hyper-parameters of the GA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size (≥ 2).
    pub population: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Tournament size for parent selection (≥ 1).
    pub tournament: usize,
    /// Probability that an offspring is produced by crossover (else a
    /// clone of the first parent).
    pub crossover_rate: f64,
    /// Probability that an offspring is mutated.
    pub mutation_rate: f64,
    /// Number of best individuals copied unchanged each generation.
    pub elites: usize,
    /// RNG seed; identical seeds give identical runs.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 48,
            generations: 60,
            tournament: 3,
            crossover_rate: 0.9,
            mutation_rate: 0.35,
            elites: 2,
            seed: 0xCA12_7A5E,
        }
    }
}

impl GaConfig {
    /// Returns the config with a new seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a new population size.
    pub fn with_population(mut self, population: usize) -> Self {
        self.population = population;
        self
    }

    /// Returns the config with a new generation budget.
    pub fn with_generations(mut self, generations: usize) -> Self {
        self.generations = generations;
        self
    }

    fn validate(&self) {
        assert!(self.population >= 2, "population must be ≥ 2");
        assert!(self.tournament >= 1, "tournament must be ≥ 1");
        assert!(
            (0.0..=1.0).contains(&self.crossover_rate),
            "crossover_rate must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.mutation_rate),
            "mutation_rate must be in [0, 1]"
        );
        assert!(self.elites < self.population, "elites must be < population");
    }
}

/// A genome together with its evaluation.
#[derive(Debug, Clone)]
pub struct Individual<G> {
    /// The genome.
    pub genome: G,
    /// Its evaluation.
    pub evaluation: Evaluation,
}

/// Per-generation statistics, for convergence diagnostics and benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best objective among feasible individuals (NaN if none).
    pub best_objective: f64,
    /// Fraction of the population that is feasible.
    pub feasible_fraction: f64,
}

/// The GA engine. Construct with [`GeneticAlgorithm::new`], then call
/// [`run`](GeneticAlgorithm::run), or
/// [`run_with_history`](GeneticAlgorithm::run_with_history) to also
/// collect per-generation statistics.
#[derive(Debug)]
pub struct GeneticAlgorithm<P: Problem> {
    problem: P,
    config: GaConfig,
}

impl<P: Problem> GeneticAlgorithm<P> {
    /// Creates an engine for `problem` with the given hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (population < 2,
    /// rates outside `[0, 1]`, elites ≥ population).
    pub fn new(problem: P, config: GaConfig) -> Self {
        config.validate();
        GeneticAlgorithm { problem, config }
    }

    /// The problem being optimized.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Evolves the population and returns the best individual found
    /// across all generations (by the feasibility rule).
    pub fn run(&self) -> Individual<P::Genome> {
        self.run_with_history().0
    }

    /// Like [`run`](Self::run), with the first individuals of the
    /// initial population taken from `seeds` (truncated to the
    /// population size). Seeding with known-good designs (e.g. the
    /// NVDLA presets) guarantees the GA never returns something worse
    /// than the best seed.
    pub fn run_seeded(&self, seeds: &[P::Genome]) -> Individual<P::Genome> {
        self.evolve(seeds).0
    }

    /// Like [`run`](Self::run) but also returns per-generation stats.
    pub fn run_with_history(&self) -> (Individual<P::Genome>, Vec<GaStats>) {
        self.evolve(&[])
    }

    /// Zips genomes with their batch evaluation into individuals.
    ///
    /// # Panics
    ///
    /// Panics if the problem's `evaluate_batch` override broke the
    /// one-result-per-genome contract.
    fn evaluate_all(&self, genomes: Vec<P::Genome>) -> Vec<Individual<P::Genome>> {
        let _span = carma_trace::span!("ga.eval_batch", "n={}", genomes.len());
        let evaluations = self.problem.evaluate_batch(&genomes);
        assert_eq!(
            evaluations.len(),
            genomes.len(),
            "evaluate_batch must return one Evaluation per genome"
        );
        genomes
            .into_iter()
            .zip(evaluations)
            .map(|(genome, evaluation)| Individual { genome, evaluation })
            .collect()
    }

    fn evolve(&self, seeds: &[P::Genome]) -> (Individual<P::Genome>, Vec<GaStats>) {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Variation (RNG-sequential) is split from evaluation so each
        // generation goes through `evaluate_batch` as one unit — the
        // hook batch-parallel problems override. The RNG never feeds
        // evaluation, so this phase split is bit-identical to
        // evaluating each genome as it is produced.
        let genomes: Vec<P::Genome> = seeds
            .iter()
            .take(cfg.population)
            .cloned()
            .chain(std::iter::from_fn(|| {
                Some(self.problem.random_genome(&mut rng))
            }))
            .take(cfg.population)
            .collect();
        let mut pop = self.evaluate_all(genomes);

        let mut best = Self::best_of(&pop).clone();
        let mut history = Vec::with_capacity(cfg.generations);
        history.push(Self::stats(0, &pop));

        for generation in 1..=cfg.generations {
            let _span = carma_trace::span!("ga.generation", "gen={generation}");
            Self::sort_by_rule(&mut pop);
            let elites: Vec<Individual<P::Genome>> = pop.iter().take(cfg.elites).cloned().collect();
            let mut children = Vec::with_capacity(cfg.population - elites.len());
            while elites.len() + children.len() < cfg.population {
                let p1 = self.tournament(&pop, &mut rng);
                let p2 = self.tournament(&pop, &mut rng);
                let mut child = if rng.random_bool(cfg.crossover_rate) {
                    self.problem
                        .crossover(&pop[p1].genome, &pop[p2].genome, &mut rng)
                } else {
                    pop[p1].genome.clone()
                };
                if rng.random_bool(cfg.mutation_rate) {
                    self.problem.mutate(&mut child, &mut rng);
                }
                children.push(child);
            }
            let mut next = elites;
            next.extend(self.evaluate_all(children));
            pop = next;
            let gen_best = Self::best_of(&pop);
            if gen_best.evaluation.better_than(&best.evaluation) {
                best = gen_best.clone();
            }
            history.push(Self::stats(generation, &pop));
        }
        (best, history)
    }

    fn tournament(&self, pop: &[Individual<P::Genome>], rng: &mut StdRng) -> usize {
        let mut winner = rng.random_range(0..pop.len());
        for _ in 1..self.config.tournament {
            let challenger = rng.random_range(0..pop.len());
            if pop[challenger]
                .evaluation
                .better_than(&pop[winner].evaluation)
            {
                winner = challenger;
            }
        }
        winner
    }

    fn sort_by_rule(pop: &mut [Individual<P::Genome>]) {
        pop.sort_by(|a, b| {
            if a.evaluation.better_than(&b.evaluation) {
                std::cmp::Ordering::Less
            } else if b.evaluation.better_than(&a.evaluation) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
    }

    fn best_of(pop: &[Individual<P::Genome>]) -> &Individual<P::Genome> {
        pop.iter()
            .reduce(|best, x| {
                if x.evaluation.better_than(&best.evaluation) {
                    x
                } else {
                    best
                }
            })
            .expect("population is non-empty")
    }

    fn stats(generation: usize, pop: &[Individual<P::Genome>]) -> GaStats {
        let feasible: Vec<_> = pop.iter().filter(|i| i.evaluation.is_feasible()).collect();
        GaStats {
            generation,
            best_objective: feasible
                .iter()
                .map(|i| i.evaluation.objective)
                .fold(f64::NAN, f64::min),
            feasible_fraction: feasible.len() as f64 / pop.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize sum of squares over a fixed-length real vector.
    struct Sphere {
        dims: usize,
    }

    impl Problem for Sphere {
        type Genome = Vec<f64>;

        fn random_genome(&self, rng: &mut dyn Rng) -> Vec<f64> {
            (0..self.dims)
                .map(|_| rng.random_range(-5.0..5.0))
                .collect()
        }

        fn crossover(&self, a: &Vec<f64>, b: &Vec<f64>, rng: &mut dyn Rng) -> Vec<f64> {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| if rng.random_bool(0.5) { x } else { y })
                .collect()
        }

        fn mutate(&self, g: &mut Vec<f64>, rng: &mut dyn Rng) {
            let i = rng.random_range(0..g.len());
            g[i] += rng.random_range(-0.5..0.5);
        }

        fn evaluate(&self, g: &Vec<f64>) -> Evaluation {
            Evaluation::feasible(g.iter().map(|x| x * x).sum())
        }
    }

    /// Minimize x, subject to x ≥ 3 (optimum exactly at the boundary).
    struct BoundaryProblem;

    impl Problem for BoundaryProblem {
        type Genome = f64;

        fn random_genome(&self, rng: &mut dyn Rng) -> f64 {
            rng.random_range(-10.0..10.0)
        }

        fn crossover(&self, a: &f64, b: &f64, _rng: &mut dyn Rng) -> f64 {
            (a + b) / 2.0
        }

        fn mutate(&self, g: &mut f64, rng: &mut dyn Rng) {
            *g += rng.random_range(-1.0..1.0);
        }

        fn evaluate(&self, g: &f64) -> Evaluation {
            Evaluation::with_violation(*g, 3.0 - *g)
        }
    }

    #[test]
    fn feasibility_rule_ordering() {
        let feasible_good = Evaluation::feasible(1.0);
        let feasible_bad = Evaluation::feasible(2.0);
        let infeasible_small = Evaluation::with_violation(0.0, 0.1);
        let infeasible_large = Evaluation::with_violation(0.0, 5.0);

        assert!(feasible_good.better_than(&feasible_bad));
        assert!(feasible_bad.better_than(&infeasible_small));
        assert!(infeasible_small.better_than(&infeasible_large));
        assert!(!infeasible_large.better_than(&feasible_good));
    }

    #[test]
    fn violation_is_clamped() {
        let e = Evaluation::with_violation(1.0, -3.0);
        assert!(e.is_feasible());
    }

    #[test]
    fn sphere_converges() {
        let ga = GeneticAlgorithm::new(
            Sphere { dims: 4 },
            GaConfig::default().with_seed(42).with_generations(80),
        );
        let best = ga.run();
        assert!(
            best.evaluation.objective < 0.5,
            "GA failed to converge: {}",
            best.evaluation.objective
        );
    }

    #[test]
    fn constrained_optimum_sits_on_boundary() {
        let ga = GeneticAlgorithm::new(
            BoundaryProblem,
            GaConfig::default().with_seed(1).with_generations(100),
        );
        let best = ga.run();
        assert!(best.evaluation.is_feasible());
        assert!(
            (best.genome - 3.0).abs() < 0.2,
            "expected x ≈ 3, got {}",
            best.genome
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            GeneticAlgorithm::new(Sphere { dims: 3 }, GaConfig::default().with_seed(seed))
                .run()
                .evaluation
                .objective
        };
        assert_eq!(run(9).to_bits(), run(9).to_bits());
        // Different seeds almost surely differ.
        assert_ne!(run(9).to_bits(), run(10).to_bits());
    }

    #[test]
    fn history_has_expected_length_and_improves() {
        let ga = GeneticAlgorithm::new(Sphere { dims: 4 }, GaConfig::default().with_seed(5));
        let (_, history) = ga.run_with_history();
        assert_eq!(history.len(), GaConfig::default().generations + 1);
        let first = history.first().unwrap().best_objective;
        let last = history.last().unwrap().best_objective;
        assert!(last <= first);
    }

    /// `Sphere` with `evaluate_batch` overridden to the parallel
    /// helper — the GA must produce bit-identical runs either way.
    struct ParSphere {
        dims: usize,
    }

    impl Problem for ParSphere {
        type Genome = Vec<f64>;

        fn random_genome(&self, rng: &mut dyn Rng) -> Vec<f64> {
            Sphere { dims: self.dims }.random_genome(rng)
        }

        fn crossover(&self, a: &Vec<f64>, b: &Vec<f64>, rng: &mut dyn Rng) -> Vec<f64> {
            Sphere { dims: self.dims }.crossover(a, b, rng)
        }

        fn mutate(&self, g: &mut Vec<f64>, rng: &mut dyn Rng) {
            Sphere { dims: self.dims }.mutate(g, rng);
        }

        fn evaluate(&self, g: &Vec<f64>) -> Evaluation {
            Sphere { dims: self.dims }.evaluate(g)
        }

        fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
            crate::par_evaluate(self, genomes)
        }
    }

    #[test]
    fn default_evaluate_batch_matches_serial_loop() {
        let p = Sphere { dims: 3 };
        let genomes = vec![
            vec![1.0, 2.0, 3.0],
            vec![0.0, 0.0, 0.0],
            vec![-1.5, 0.5, 2.0],
        ];
        let batch = p.evaluate_batch(&genomes);
        for (g, e) in genomes.iter().zip(&batch) {
            assert_eq!(p.evaluate(g), *e);
        }
    }

    #[test]
    fn parallel_batch_override_is_bit_identical() {
        let serial = GeneticAlgorithm::new(
            Sphere { dims: 4 },
            GaConfig::default().with_seed(33).with_generations(12),
        )
        .run();
        for threads in [1, 4] {
            let parallel = carma_exec::with_threads(threads, || {
                GeneticAlgorithm::new(
                    ParSphere { dims: 4 },
                    GaConfig::default().with_seed(33).with_generations(12),
                )
                .run()
            });
            assert_eq!(
                serial.evaluation.objective.to_bits(),
                parallel.evaluation.objective.to_bits(),
                "threads = {threads}"
            );
            assert_eq!(serial.genome, parallel.genome, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "one Evaluation per genome")]
    fn short_batch_result_rejected() {
        struct Broken;
        impl Problem for Broken {
            type Genome = f64;
            fn random_genome(&self, rng: &mut dyn Rng) -> f64 {
                rng.random_range(-1.0..1.0)
            }
            fn crossover(&self, a: &f64, _b: &f64, _rng: &mut dyn Rng) -> f64 {
                *a
            }
            fn mutate(&self, _g: &mut f64, _rng: &mut dyn Rng) {}
            fn evaluate(&self, g: &f64) -> Evaluation {
                Evaluation::feasible(*g)
            }
            fn evaluate_batch(&self, _genomes: &[f64]) -> Vec<Evaluation> {
                Vec::new() // violates the contract
            }
        }
        let _ = GeneticAlgorithm::new(Broken, GaConfig::default()).run();
    }

    #[test]
    #[should_panic(expected = "population must be ≥ 2")]
    fn tiny_population_rejected() {
        let cfg = GaConfig {
            population: 1,
            ..GaConfig::default()
        };
        let _ = GeneticAlgorithm::new(Sphere { dims: 2 }, cfg);
    }

    #[test]
    #[should_panic(expected = "elites must be < population")]
    fn too_many_elites_rejected() {
        let cfg = GaConfig {
            population: 4,
            elites: 4,
            ..GaConfig::default()
        };
        let _ = GeneticAlgorithm::new(Sphere { dims: 2 }, cfg);
    }
}
