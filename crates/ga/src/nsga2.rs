//! NSGA-II multi-objective optimizer (Deb et al., 2002).
//!
//! Used by `carma-multiplier` to search the approximation design space
//! for near-Pareto-optimal (area, error) multipliers, as the paper's
//! step one prescribes: *"approximations are guided by a
//! multi-objective optimization algorithm that explores the design
//! space to identify near-Pareto-optimal solutions"*.
//!
//! All objectives are minimized.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// A problem definition for NSGA-II. All objectives are minimized.
pub trait MultiObjectiveProblem {
    /// The genome representation.
    type Genome: Clone;

    /// Number of objectives (must match `evaluate`'s output length).
    fn objectives(&self) -> usize;

    /// Samples a random genome.
    fn random_genome(&self, rng: &mut dyn Rng) -> Self::Genome;

    /// Recombines two parents into one offspring.
    fn crossover(&self, a: &Self::Genome, b: &Self::Genome, rng: &mut dyn Rng) -> Self::Genome;

    /// Mutates a genome in place.
    fn mutate(&self, genome: &mut Self::Genome, rng: &mut dyn Rng);

    /// Evaluates a genome into one value per objective (minimized).
    fn evaluate(&self, genome: &Self::Genome) -> Vec<f64>;

    /// Evaluates a whole batch of genomes. The engine routes all
    /// fitness evaluation through this method; override it (e.g. with
    /// [`par_evaluate_multi`](crate::par_evaluate_multi)) to evaluate
    /// a generation in parallel. Overrides must return results in
    /// input order and be pure per genome, keeping batch evaluation
    /// bit-identical to the serial default.
    fn evaluate_batch(&self, genomes: &[Self::Genome]) -> Vec<Vec<f64>> {
        genomes.iter().map(|g| self.evaluate(g)).collect()
    }
}

/// Parallel [`MultiObjectiveProblem::evaluate_batch`] building block:
/// evaluates the batch on the `carma-exec` pool, preserving input
/// order (the multi-objective sibling of
/// [`par_evaluate`](crate::par_evaluate)).
pub fn par_evaluate_multi<P>(problem: &P, genomes: &[P::Genome]) -> Vec<Vec<f64>>
where
    P: MultiObjectiveProblem + Sync + ?Sized,
    P::Genome: Sync,
{
    carma_exec::par_map(genomes, |g| problem.evaluate(g))
}

/// A genome with its objective vector, as stored on the final front.
#[derive(Debug, Clone)]
pub struct ParetoIndividual<G> {
    /// The genome.
    pub genome: G,
    /// Objective values (minimized, same order as `evaluate`).
    pub objectives: Vec<f64>,
}

/// Hyper-parameters of the NSGA-II run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nsga2Config {
    /// Population size (≥ 4, even).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Probability of crossover per offspring.
    pub crossover_rate: f64,
    /// Probability of mutation per offspring.
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 64,
            generations: 50,
            crossover_rate: 0.9,
            mutation_rate: 0.4,
            seed: 0x9A5A_2D0E,
        }
    }
}

impl Nsga2Config {
    /// Returns the config with a new seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a new population size.
    pub fn with_population(mut self, population: usize) -> Self {
        self.population = population;
        self
    }

    /// Returns the config with a new generation budget.
    pub fn with_generations(mut self, generations: usize) -> Self {
        self.generations = generations;
        self
    }

    fn validate(&self) {
        assert!(self.population >= 4, "population must be ≥ 4");
        assert!(self.population.is_multiple_of(2), "population must be even");
        assert!(
            (0.0..=1.0).contains(&self.crossover_rate) && (0.0..=1.0).contains(&self.mutation_rate),
            "rates must be in [0, 1]"
        );
    }
}

/// Returns `true` if `a` Pareto-dominates `b` (no worse in every
/// objective, strictly better in at least one; minimization).
fn dominates(a: &[f64], b: &[f64]) -> bool {
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Fast non-dominated sort: partitions indices `0..objs.len()` into
/// fronts; front 0 is the non-dominated set.
pub fn fast_non_dominated_sort(objs: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objs.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut domination_count = vec![0usize; n];
    let mut fronts: Vec<Vec<usize>> = vec![Vec::new()];

    for p in 0..n {
        for q in 0..n {
            if p == q {
                continue;
            }
            if dominates(&objs[p], &objs[q]) {
                dominated_by[p].push(q);
            } else if dominates(&objs[q], &objs[p]) {
                domination_count[p] += 1;
            }
        }
        if domination_count[p] == 0 {
            fronts[0].push(p);
        }
    }

    let mut i = 0;
    while !fronts[i].is_empty() {
        let mut next = Vec::new();
        for &p in &fronts[i] {
            for &q in &dominated_by[p] {
                domination_count[q] -= 1;
                if domination_count[q] == 0 {
                    next.push(q);
                }
            }
        }
        i += 1;
        fronts.push(next);
    }
    fronts.pop(); // the trailing empty front
    fronts
}

/// Crowding distance of each member of one front (indices into `objs`).
///
/// Boundary points get `f64::INFINITY`; interior points get the usual
/// normalized cuboid perimeter contribution.
pub fn crowding_distance(objs: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let m = if front.is_empty() {
        return Vec::new();
    } else {
        objs[front[0]].len()
    };
    let mut distance = vec![0.0f64; front.len()];
    // `obj` selects the objective *column* inside doubly-indexed
    // lookups; an iterator over `objs` rows (clippy's suggestion) would
    // be wrong.
    #[allow(clippy::needless_range_loop)]
    for obj in 0..m {
        let mut order: Vec<usize> = (0..front.len()).collect();
        order.sort_by(|&a, &b| {
            objs[front[a]][obj]
                .partial_cmp(&objs[front[b]][obj])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = objs[front[order[0]]][obj];
        let hi = objs[front[*order.last().unwrap()]][obj];
        distance[order[0]] = f64::INFINITY;
        distance[*order.last().unwrap()] = f64::INFINITY;
        let span = hi - lo;
        if span <= 0.0 {
            continue;
        }
        for w in 1..order.len().saturating_sub(1) {
            let prev = objs[front[order[w - 1]]][obj];
            let next = objs[front[order[w + 1]]][obj];
            distance[order[w]] += (next - prev) / span;
        }
    }
    distance
}

/// The NSGA-II engine.
#[derive(Debug)]
pub struct Nsga2<P: MultiObjectiveProblem> {
    problem: P,
    config: Nsga2Config,
}

struct Member<G> {
    genome: G,
    objectives: Vec<f64>,
    rank: usize,
    crowding: f64,
}

impl<P: MultiObjectiveProblem> Nsga2<P> {
    /// Creates an engine for `problem`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`Nsga2Config`]).
    pub fn new(problem: P, config: Nsga2Config) -> Self {
        config.validate();
        Nsga2 { problem, config }
    }

    /// The problem being optimized.
    pub fn problem(&self) -> &P {
        &self.problem
    }

    /// Batch-evaluates `genomes` into pool members (rank/crowding
    /// unset).
    ///
    /// # Panics
    ///
    /// Panics if the problem's `evaluate_batch` override broke the
    /// one-result-per-genome contract.
    fn evaluate_all(&self, genomes: Vec<P::Genome>) -> Vec<Member<P::Genome>> {
        let _span = carma_trace::span!("nsga2.eval_batch", "n={}", genomes.len());
        let objectives = self.problem.evaluate_batch(&genomes);
        assert_eq!(
            objectives.len(),
            genomes.len(),
            "evaluate_batch must return one objective vector per genome"
        );
        genomes
            .into_iter()
            .zip(objectives)
            .map(|(genome, objectives)| {
                debug_assert_eq!(objectives.len(), self.problem.objectives());
                Member {
                    genome,
                    objectives,
                    rank: 0,
                    crowding: 0.0,
                }
            })
            .collect()
    }

    /// Runs the optimization and returns the final non-dominated front.
    pub fn run(&self) -> Vec<ParetoIndividual<P::Genome>> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // As in the single-objective engine, variation (RNG-sequential)
        // is split from evaluation so every generation flows through
        // `evaluate_batch` — the batch-parallelism hook. Evaluation
        // never touches the RNG, so the split is bit-identical to the
        // interleaved formulation.
        let genomes: Vec<P::Genome> = (0..cfg.population)
            .map(|_| self.problem.random_genome(&mut rng))
            .collect();
        let mut pop = self.evaluate_all(genomes);
        Self::assign_rank_and_crowding(&mut pop);

        for generation in 0..cfg.generations {
            let _span = carma_trace::span!("nsga2.generation", "gen={generation}");
            // Produce offspring by binary tournament on (rank, crowding).
            let mut children: Vec<P::Genome> = Vec::with_capacity(cfg.population);
            while children.len() < cfg.population {
                let p1 = Self::binary_tournament(&pop, &mut rng);
                let p2 = Self::binary_tournament(&pop, &mut rng);
                let mut child = if rng.random_bool(cfg.crossover_rate) {
                    self.problem
                        .crossover(&pop[p1].genome, &pop[p2].genome, &mut rng)
                } else {
                    pop[p1].genome.clone()
                };
                if rng.random_bool(cfg.mutation_rate) {
                    self.problem.mutate(&mut child, &mut rng);
                }
                children.push(child);
            }
            let offspring = self.evaluate_all(children);

            // Environmental selection over parents ∪ offspring.
            pop.extend(offspring);
            let objs: Vec<Vec<f64>> = pop.iter().map(|m| m.objectives.clone()).collect();
            let fronts = fast_non_dominated_sort(&objs);
            let mut taken = vec![false; pop.len()];
            let mut count = 0usize;
            for front in &fronts {
                if count + front.len() <= cfg.population {
                    for &i in front {
                        taken[i] = true;
                    }
                    count += front.len();
                } else {
                    // Partial front: keep the most spread-out members.
                    let cd = crowding_distance(&objs, front);
                    let mut order: Vec<usize> = (0..front.len()).collect();
                    order.sort_by(|&a, &b| {
                        cd[b]
                            .partial_cmp(&cd[a])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    for &w in order.iter().take(cfg.population - count) {
                        taken[front[w]] = true;
                    }
                    count = cfg.population;
                }
                if count == cfg.population {
                    break;
                }
            }
            let mut idx = 0;
            pop.retain(|_| {
                let keep = taken[idx];
                idx += 1;
                keep
            });
            Self::assign_rank_and_crowding(&mut pop);
        }

        // Return front 0.
        pop.into_iter()
            .filter(|m| m.rank == 0)
            .map(|m| ParetoIndividual {
                genome: m.genome,
                objectives: m.objectives,
            })
            .collect()
    }

    fn assign_rank_and_crowding(pop: &mut [Member<P::Genome>]) {
        let objs: Vec<Vec<f64>> = pop.iter().map(|m| m.objectives.clone()).collect();
        let fronts = fast_non_dominated_sort(&objs);
        for (rank, front) in fronts.iter().enumerate() {
            let cd = crowding_distance(&objs, front);
            for (w, &i) in front.iter().enumerate() {
                pop[i].rank = rank;
                pop[i].crowding = cd[w];
            }
        }
    }

    fn binary_tournament(pop: &[Member<P::Genome>], rng: &mut StdRng) -> usize {
        let a = rng.random_range(0..pop.len());
        let b = rng.random_range(0..pop.len());
        let better = |x: &Member<P::Genome>, y: &Member<P::Genome>| {
            x.rank < y.rank || (x.rank == y.rank && x.crowding > y.crowding)
        };
        if better(&pop[a], &pop[b]) {
            a
        } else {
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0])); // trade-off
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0])); // equal
    }

    #[test]
    fn sort_partitions_into_correct_fronts() {
        let objs = vec![
            vec![1.0, 4.0], // front 0
            vec![2.0, 3.0], // front 0
            vec![4.0, 1.0], // front 0
            vec![3.0, 4.0], // dominated by (1,4)? no: 1<3, 4==4 → dominated
            vec![5.0, 5.0], // dominated by everything
        ];
        let fronts = fast_non_dominated_sort(&objs);
        assert_eq!(fronts[0], vec![0, 1, 2]);
        assert!(fronts[1].contains(&3));
        assert!(fronts.last().unwrap().contains(&4));
    }

    #[test]
    fn crowding_rewards_boundary_points() {
        let objs = vec![vec![0.0, 10.0], vec![5.0, 5.0], vec![10.0, 0.0]];
        let front = vec![0, 1, 2];
        let cd = crowding_distance(&objs, &front);
        assert!(cd[0].is_infinite());
        assert!(cd[2].is_infinite());
        assert!(cd[1].is_finite() && cd[1] > 0.0);
    }

    #[test]
    fn crowding_handles_degenerate_front() {
        let objs = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let cd = crowding_distance(&objs, &[0, 1]);
        assert_eq!(cd.len(), 2);
        assert!(cd.iter().all(|d| d.is_infinite()));
    }

    /// Schaffer's problem N.1: f1 = x², f2 = (x−2)²; the Pareto set is
    /// x ∈ [0, 2].
    struct Schaffer;

    impl MultiObjectiveProblem for Schaffer {
        type Genome = f64;

        fn objectives(&self) -> usize {
            2
        }

        fn random_genome(&self, rng: &mut dyn Rng) -> f64 {
            rng.random_range(-10.0..10.0)
        }

        fn crossover(&self, a: &f64, b: &f64, rng: &mut dyn Rng) -> f64 {
            let t: f64 = rng.random_range(0.0..1.0);
            a * t + b * (1.0 - t)
        }

        fn mutate(&self, g: &mut f64, rng: &mut dyn Rng) {
            *g += rng.random_range(-0.5..0.5);
        }

        fn evaluate(&self, g: &f64) -> Vec<f64> {
            vec![g * g, (g - 2.0) * (g - 2.0)]
        }
    }

    #[test]
    fn schaffer_front_is_found() {
        let nsga = Nsga2::new(Schaffer, Nsga2Config::default().with_seed(3));
        let front = nsga.run();
        assert!(front.len() >= 8, "front too small: {}", front.len());
        // All solutions near the true Pareto set x ∈ [0, 2].
        for p in &front {
            assert!(
                p.genome > -0.3 && p.genome < 2.3,
                "off-front solution x = {}",
                p.genome
            );
        }
        // Non-domination within the returned front.
        for a in &front {
            for b in &front {
                assert!(
                    !dominates(&a.objectives, &b.objectives) || a.objectives == b.objectives,
                    "front member {:?} dominates {:?}",
                    a.objectives,
                    b.objectives
                );
            }
        }
        let objs: Vec<Vec<f64>> = front.iter().map(|p| p.objectives.clone()).collect();
        let fronts = fast_non_dominated_sort(&objs);
        assert_eq!(fronts.len(), 1, "returned front must be non-dominated");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let front = Nsga2::new(Schaffer, Nsga2Config::default().with_seed(seed)).run();
            front.iter().map(|p| p.genome).fold(0.0, f64::max)
        };
        assert_eq!(run(11).to_bits(), run(11).to_bits());
    }

    /// Schaffer with `evaluate_batch` overridden to the parallel
    /// helper.
    struct ParSchaffer;

    impl MultiObjectiveProblem for ParSchaffer {
        type Genome = f64;

        fn objectives(&self) -> usize {
            2
        }

        fn random_genome(&self, rng: &mut dyn Rng) -> f64 {
            Schaffer.random_genome(rng)
        }

        fn crossover(&self, a: &f64, b: &f64, rng: &mut dyn Rng) -> f64 {
            Schaffer.crossover(a, b, rng)
        }

        fn mutate(&self, g: &mut f64, rng: &mut dyn Rng) {
            Schaffer.mutate(g, rng);
        }

        fn evaluate(&self, g: &f64) -> Vec<f64> {
            Schaffer.evaluate(g)
        }

        fn evaluate_batch(&self, genomes: &[f64]) -> Vec<Vec<f64>> {
            crate::par_evaluate_multi(self, genomes)
        }
    }

    #[test]
    fn parallel_batch_override_is_bit_identical() {
        let cfg = Nsga2Config::default().with_seed(29).with_generations(12);
        let serial = Nsga2::new(Schaffer, cfg).run();
        for threads in [1, 4] {
            let parallel = carma_exec::with_threads(threads, || Nsga2::new(ParSchaffer, cfg).run());
            assert_eq!(serial.len(), parallel.len(), "threads = {threads}");
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.genome.to_bits(), b.genome.to_bits());
                assert_eq!(a.objectives, b.objectives);
            }
        }
    }

    #[test]
    #[should_panic(expected = "population must be even")]
    fn odd_population_rejected() {
        let cfg = Nsga2Config {
            population: 5,
            ..Nsga2Config::default()
        };
        let _ = Nsga2::new(Schaffer, cfg);
    }
}
