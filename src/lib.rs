//! # carma
//!
//! Workspace meta-crate re-exporting the full CARMA stack — the
//! reproduction of *Late Breaking Results: Leveraging Approximate
//! Computing for Carbon-Aware DNN Accelerators* (Panteleaki et al.,
//! DAC 2025) — so downstream users can depend on one crate.
//!
//! Layering (each crate depends only on those before it):
//!
//! 1. [`netlist`] — gate-level IR, bit-parallel simulation, area.
//! 2. [`ga`] — NSGA-II and constrained single-objective GA engines.
//! 3. [`multiplier`] — exact + approximate multiplier generation,
//!    error characterization, LUT compilation, Pareto library.
//! 4. [`dnn`] — workload tables and behavioural accuracy evaluation.
//! 5. [`dataflow`] — NVDLA-style performance/energy/area oracle.
//! 6. [`carbon`] — ACT-style embodied-carbon model and CDP metric.
//! 7. [`core`] — the paper's flow: GA over the accelerator space with
//!    Carbon Delay Product fitness under FPS/accuracy constraints,
//!    plus the declarative scenario API (`carma_core::scenario`)
//!    behind the unified `carma` CLI (`carma list`, `carma run
//!    <name>`, `carma run --spec scenario.json`) that regenerates
//!    every figure, table and ablation of the evaluation.

pub use carma_carbon as carbon;
pub use carma_core as core;
pub use carma_dataflow as dataflow;
pub use carma_dnn as dnn;
pub use carma_ga as ga;
pub use carma_multiplier as multiplier;
pub use carma_netlist as netlist;
