//! The unified `carma` CLI: list and run every paper experiment
//! through the declarative scenario API, replacing per-figure binary
//! sprawl with one entry point.
//!
//! ```text
//! carma list
//! carma run fig2
//! carma run table1 --scale full --threads 8 --out csv --output table1.csv
//! carma run --spec examples/scenarios/fig2_quick.json --out json
//! ```

use std::process::ExitCode;

use carma_core::scenario::{banner_text, Artifact, ExperimentRegistry, Scale, ScenarioSpec};

const USAGE: &str = "\
carma — carbon-aware DNN accelerator experiments (Panteleaki et al., DATE 2025)

USAGE:
  carma list                          show every experiment and what it reproduces
  carma run <name> [OPTIONS]          run a registered experiment
  carma run --spec <file> [OPTIONS]   run a JSON scenario spec
  carma lint [LINT OPTIONS]           statically analyze the multiplier libraries
  carma serve [SERVE OPTIONS]         serve experiments over HTTP with a result cache
  carma help                          show this message

LINT OPTIONS:
  --family <f>         ladder|classic|evolved|imported|all   (default: all)
  --library <path>     lint an imported .v/.edf library file (implies
                       --family imported; the file passes the admission gate
                       — strict lint + static bound + equivalence — first)
  --library-depth <N>  truncation depth 1..=7          (default: scale default)
  --scale quick|full   library scale                   (default: $CARMA_SCALE or quick)
  --out text|json      output format                   (default: text)
  --output <path>      write the report to <path> instead of stdout
  --fixture corrupted  lint the built-in corrupted fixture netlist instead
                       (strict profile; exercises the failure path)
  Exits 1 when any error-severity finding is present, 2 on usage errors.

SERVE OPTIONS:
  --addr <host:port>   listen address                     (default: 127.0.0.1:8337)
  --workers <N>        job-queue worker threads           (default: 2)
  --queue <N>          bounded job-queue capacity         (default: 64)
  --cache-dir <dir>    persist the result cache to <dir>  (default: memory only)
  --memo-dir <dir>     persist the stage memo to <dir> (shared by all workers)
  --max-conns <N>      open-connection limit; extras get a 503 + Retry-After
                       (default: 512)

OPTIONS:
  --spec <file>        load a ScenarioSpec from JSON (spec fields win over flags)
  --scale quick|full   experiment scale        (spec > flag > $CARMA_SCALE > quick)
  --threads <N>        execution-engine width  (spec > flag > $CARMA_THREADS > auto)
  --model <name>       DNN model (vgg16|vgg19|resnet50|resnet152|mobilenet_v1|alexnet|zoo)
  --node <node>        primary tech node (7nm|14nm|28nm)
  --nodes <a,b,..>     node sweep for multi-node experiments
  --library <path>     run against an imported multiplier library
                       (gate-level structural Verilog `.v` or EDIF 2.0.0
                       `.edf`; implies `family: \"imported\"`; every module
                       must pass the admission gate at resolve time)
  --seed <N>           GA seed override
  --out text|json|csv  output format (default: text)
  --output <path>      write the output to <path> instead of stdout
  --memo-dir <dir>     persist the stage memo (library / context / cell results)
                       to <dir>; overlapping later runs reuse the shared stages
  --memo-stats         print per-stage memo hit/miss counters to stderr after
                       the run
  --fingerprint        print the scenario's result-cache fingerprint and exit
                       (the content address `carma serve` memoizes under;
                       invariant to --threads / $CARMA_THREADS)
  --trace <sink>       record a hierarchical span trace of the run and emit it:
                       `text` (profile tree: count/total/self/p50/p99 per span),
                       `chrome` (Chrome trace_event JSON — load the file in
                       chrome://tracing or ui.perfetto.dev), or `json` (the
                       machine-readable provenance block: wall time, thread
                       width, memo counters, span totals, build info)
  --trace-out <path>   write the trace sink to <path> instead of stderr
  --verbose            print a stderr progress line as each pipeline stage
                       finishes (stdout stays machine-clean in json/csv modes)

Results are deterministic for a given spec and scale — the thread count
never changes them: every width reproduces the serial reference
bit-for-bit.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn list() {
    let registry = ExperimentRegistry::standard();
    println!("CARMA experiments (run with `carma run <name>`):\n");
    for info in registry.entries() {
        println!("  {:<16} {}", info.name, info.index);
    }
    println!("\nSpecs: `carma run --spec <file.json>` (see examples/scenarios/).");
}

/// Output format of `carma run`.
#[derive(Clone, Copy, PartialEq)]
enum OutFormat {
    Text,
    Json,
    Csv,
}

struct RunArgs {
    name: Option<String>,
    spec_path: Option<String>,
    scale: Option<Scale>,
    threads: Option<usize>,
    model: Option<String>,
    node: Option<String>,
    nodes: Option<Vec<String>>,
    library: Option<String>,
    seed: Option<u64>,
    out: OutFormat,
    output: Option<String>,
    memo_dir: Option<String>,
    memo_stats: bool,
    fingerprint: bool,
    trace: Option<TraceSink>,
    trace_out: Option<String>,
    verbose: bool,
}

/// Which `--trace` sink to emit after the run.
#[derive(Clone, Copy, PartialEq)]
enum TraceSink {
    Text,
    Chrome,
    Json,
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n");
    eprintln!("run `carma help` for usage");
    ExitCode::from(2)
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut parsed = RunArgs {
        name: None,
        spec_path: None,
        scale: None,
        threads: None,
        model: None,
        node: None,
        nodes: None,
        library: None,
        seed: None,
        out: OutFormat::Text,
        output: None,
        memo_dir: None,
        memo_stats: false,
        fingerprint: false,
        trace: None,
        trace_out: None,
        verbose: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        match arg.as_str() {
            "--spec" => parsed.spec_path = Some(value_for("--spec")?),
            "--scale" => {
                let v = value_for("--scale")?;
                parsed.scale = Some(v.parse::<Scale>().map_err(|e| e.to_string())?);
            }
            "--threads" => {
                let v = value_for("--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("`--threads` needs a positive integer (got `{v}`)"))?;
                if n == 0 {
                    return Err("`--threads` must be ≥ 1".to_string());
                }
                parsed.threads = Some(n);
            }
            "--model" => parsed.model = Some(value_for("--model")?),
            "--node" => parsed.node = Some(value_for("--node")?),
            "--nodes" => {
                let v = value_for("--nodes")?;
                parsed.nodes = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--library" => parsed.library = Some(value_for("--library")?),
            "--seed" => {
                let v = value_for("--seed")?;
                parsed.seed = Some(
                    v.parse()
                        .map_err(|_| format!("`--seed` needs an integer (got `{v}`)"))?,
                );
            }
            "--out" => {
                parsed.out = match value_for("--out")?.as_str() {
                    "text" => OutFormat::Text,
                    "json" => OutFormat::Json,
                    "csv" => OutFormat::Csv,
                    other => return Err(format!("unknown output format `{other}`")),
                };
            }
            "--output" => parsed.output = Some(value_for("--output")?),
            "--memo-dir" => parsed.memo_dir = Some(value_for("--memo-dir")?),
            "--memo-stats" => parsed.memo_stats = true,
            "--fingerprint" => parsed.fingerprint = true,
            "--trace" => {
                parsed.trace = Some(match value_for("--trace")?.as_str() {
                    "text" => TraceSink::Text,
                    "chrome" => TraceSink::Chrome,
                    "json" => TraceSink::Json,
                    other => {
                        return Err(format!(
                            "unknown trace sink `{other}` (expected text|chrome|json)"
                        ))
                    }
                });
            }
            "--trace-out" => parsed.trace_out = Some(value_for("--trace-out")?),
            "--verbose" => parsed.verbose = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            name => {
                if parsed.name.replace(name.to_string()).is_some() {
                    return Err(format!("unexpected extra argument `{name}`"));
                }
            }
        }
    }
    if parsed.name.is_none() && parsed.spec_path.is_none() {
        return Err("give an experiment name or `--spec <file>`".to_string());
    }
    Ok(parsed)
}

/// The `carma lint` entry point: run the static-analysis experiment
/// over the multiplier libraries (or the corrupted fixture) and map
/// error-severity findings to a non-zero exit code.
fn lint(args: &[String]) -> ExitCode {
    let mut family: Option<String> = None;
    let mut library: Option<String> = None;
    let mut library_depth: Option<u8> = None;
    let mut scale: Option<Scale> = None;
    let mut threads: Option<usize> = None;
    let mut out = OutFormat::Text;
    let mut output: Option<String> = None;
    let mut fixture = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        let parsed = match arg.as_str() {
            "--family" => value_for("--family").and_then(|v| match v.as_str() {
                "ladder" | "classic" | "evolved" | "imported" => {
                    family = Some(v);
                    Ok(())
                }
                "all" => {
                    family = None;
                    Ok(())
                }
                other => Err(format!(
                    "unknown family `{other}` (expected ladder|classic|evolved|imported|all)"
                )),
            }),
            "--library" => value_for("--library").map(|v| library = Some(v)),
            "--library-depth" => value_for("--library-depth").and_then(|v| {
                v.parse::<u8>()
                    .ok()
                    .filter(|&n| (1..=7).contains(&n))
                    .map(|n| library_depth = Some(n))
                    .ok_or_else(|| {
                        format!("`--library-depth` needs an integer in 1..=7 (got `{v}`)")
                    })
            }),
            "--scale" => value_for("--scale").and_then(|v| {
                v.parse::<Scale>()
                    .map(|s| scale = Some(s))
                    .map_err(|e| e.to_string())
            }),
            "--threads" => value_for("--threads").and_then(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .map(|n| threads = Some(n))
                    .ok_or_else(|| format!("`--threads` needs a positive integer (got `{v}`)"))
            }),
            "--out" => value_for("--out").and_then(|v| match v.as_str() {
                "text" => {
                    out = OutFormat::Text;
                    Ok(())
                }
                "json" => {
                    out = OutFormat::Json;
                    Ok(())
                }
                other => Err(format!(
                    "unknown output format `{other}` (expected text|json)"
                )),
            }),
            "--output" => value_for("--output").map(|v| output = Some(v)),
            "--fixture" => value_for("--fixture").and_then(|v| match v.as_str() {
                "corrupted" => {
                    fixture = true;
                    Ok(())
                }
                other => Err(format!("unknown fixture `{other}` (expected corrupted)")),
            }),
            other => Err(format!("unknown lint argument `{other}`")),
        };
        if let Err(msg) = parsed {
            return usage_error(&msg);
        }
    }

    print_env_diagnostics();

    let report = if fixture {
        carma_core::fixture_lint_report(carma_core::scenario::resolve_scale(None, scale))
    } else {
        let mut spec = ScenarioSpec::named("lint");
        if let Some(f) = family {
            spec.family = f;
        }
        if let Some(path) = library {
            spec.library = path;
            if spec.family.is_empty() {
                spec.family = "imported".to_string();
            }
        }
        spec.library_depth = library_depth;
        let registry = ExperimentRegistry::standard();
        match registry.run_with_env(&spec, scale, threads, &carma_core::RunEnv::standard()) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let payload = match out {
        OutFormat::Text => format!("{}{}", report.tables_text(), report.notes_text()),
        OutFormat::Json => {
            let mut json = report.to_json();
            json.push('\n');
            json
        }
        OutFormat::Csv => report.to_csv(),
    };
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, payload) {
                eprintln!("error: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("(written to {path})");
        }
        None => print!("{payload}"),
    }

    let errors: usize = report
        .artifacts
        .iter()
        .map(|a| match a {
            Artifact::Lint(rows) => rows.iter().map(|row| row.errors).sum(),
            _ => 0,
        })
        .sum();
    if errors > 0 {
        eprintln!("lint: {errors} error-severity finding(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The `carma serve` entry point: boot the embedded HTTP scenario
/// service and block until a `POST /shutdown` arrives.
fn serve(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:8337".to_string();
    let mut config = carma_serve::ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("`{flag}` needs a value"))
        };
        let parsed = match arg.as_str() {
            "--addr" => value_for("--addr").map(|v| addr = v),
            "--workers" => value_for("--workers").and_then(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .map(|n| config.workers = n)
                    .ok_or_else(|| format!("`--workers` needs a positive integer (got `{v}`)"))
            }),
            "--queue" => value_for("--queue").and_then(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .map(|n| config.queue_capacity = n)
                    .ok_or_else(|| format!("`--queue` needs a positive integer (got `{v}`)"))
            }),
            "--cache-dir" => value_for("--cache-dir").map(|v| config.cache_dir = Some(v.into())),
            "--memo-dir" => value_for("--memo-dir").map(|v| config.memo_dir = Some(v.into())),
            "--max-conns" => value_for("--max-conns").and_then(|v| {
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .map(|n| config.max_conns = n)
                    .ok_or_else(|| format!("`--max-conns` needs a positive integer (got `{v}`)"))
            }),
            other => Err(format!("unknown serve argument `{other}`")),
        };
        if let Err(msg) = parsed {
            return usage_error(&msg);
        }
    }

    print_env_diagnostics();
    let server = match carma_serve::Server::bind(&addr, config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind `{addr}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // The one stdout line is machine-harvestable: scripts (and the
        // CI smoke job) read the bound address from it when the OS
        // picked the port.
        Ok(bound) => println!("carma-serve listening on http://{bound}"),
        Err(_) => println!("carma-serve listening on http://{addr}"),
    }
    // Piped stdout is block-buffered; scripts wait on this line while
    // the process keeps running, so push it out before blocking.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "workers: {}, queue capacity: {}, max connections: {}, cache: {}",
        config.workers,
        config.queue_capacity,
        config.max_conns,
        config
            .cache_dir
            .as_deref()
            .map_or("memory only".to_string(), |d| d.display().to_string()),
    );
    eprintln!(
        "stage memo: {}",
        config
            .memo_dir
            .as_deref()
            .map_or("memory only".to_string(), |d| d.display().to_string()),
    );
    eprintln!(
        "endpoints: GET /healthz, GET /experiments, GET /metrics, GET /trace?last=N, POST /run \
         (spec or batch array), GET /jobs/:id, POST /shutdown"
    );
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Mistyped `CARMA_SCALE` / `CARMA_THREADS` would otherwise be
/// silently swallowed by the lenient library fallbacks.
fn print_env_diagnostics() {
    if let Some(warning) = carma_core::scenario::scale_env_diagnostic() {
        carma_trace::diag(&warning);
    }
    if let Some(warning) = carma_core::scenario::threads_env_diagnostic() {
        carma_trace::diag(&warning);
    }
}

fn run(args: &[String]) -> ExitCode {
    let parsed = match parse_run_args(args) {
        Ok(p) => p,
        Err(msg) => return usage_error(&msg),
    };

    print_env_diagnostics();

    // Build the spec: from file, or the named default. Spec fields win
    // over flags (spec > CLI > env), so flags only fill defaulted
    // fields. Matching on both sources keeps every argument
    // combination on the usage-error path — no panic is reachable even
    // if the parser's invariants drift.
    let mut spec = match (&parsed.spec_path, &parsed.name) {
        (Some(path), _) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return usage_error(&format!("cannot read `{path}`: {e}")),
            };
            match ScenarioSpec::from_json(&text) {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        (None, Some(name)) => ScenarioSpec::named(name),
        (None, None) => return usage_error("give an experiment name or `--spec <file>`"),
    };
    if let (Some(name), Some(_)) = (&parsed.name, &parsed.spec_path) {
        if *name != spec.experiment {
            return usage_error(&format!(
                "both `{name}` and --spec (experiment `{}`) given — drop one",
                spec.experiment
            ));
        }
    }
    if let Some(model) = parsed.model {
        if spec.model.is_empty() {
            spec.model = model;
        }
    }
    if let Some(node) = parsed.node {
        if spec.node.is_empty() {
            spec.node = node;
        }
    }
    if let Some(nodes) = parsed.nodes {
        if spec.nodes.is_empty() {
            spec.nodes = nodes;
        }
    }
    if let Some(library) = parsed.library {
        if spec.library.is_empty() {
            spec.library = library;
        }
        // A library path only takes effect under the imported family;
        // filling it in keeps `--library foo.v` self-contained.
        if spec.family.is_empty() {
            spec.family = "imported".to_string();
        }
    }
    if let Some(seed) = parsed.seed {
        spec.seed.get_or_insert(seed);
    }

    let registry = ExperimentRegistry::standard();

    // `--fingerprint` resolves without running: print the content
    // address `carma serve` would cache this scenario under.
    if parsed.fingerprint {
        return match spec.resolve(&registry, parsed.scale, parsed.threads) {
            Ok(resolved) => {
                println!("{}", resolved.fingerprint());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    // In machine-readable modes keep stdout pure; the banner goes to
    // stderr as a progress line.
    let resolved_scale = if spec.scale.is_empty() {
        carma_core::scenario::resolve_scale(None, parsed.scale)
    } else {
        match spec.scale.parse::<Scale>() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    };
    if let Some(info) = registry.get(&spec.experiment) {
        let banner = banner_text(info.title, resolved_scale);
        match parsed.out {
            OutFormat::Text if parsed.output.is_none() => print!("{banner}"),
            _ => eprint!("{banner}"),
        }
    }

    // The run environment: always memoized within the run; `--memo-dir`
    // adds the disk tier that carries stages across runs.
    let env = match &parsed.memo_dir {
        Some(dir) => match carma_core::MemoLayer::with_disk(dir.into()) {
            Ok(layer) => carma_core::RunEnv::with_memo(layer),
            Err(e) => {
                eprintln!("error: cannot open memo dir `{dir}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => carma_core::RunEnv::standard(),
    };

    // `--trace` / `--verbose` install an ambient collector for the
    // duration of the run; with neither flag every span throughout the
    // pipeline stays a no-op.
    let collector = (parsed.trace.is_some() || parsed.verbose).then(|| {
        std::sync::Arc::new(if parsed.verbose {
            carma_trace::Collector::new_verbose()
        } else {
            carma_trace::Collector::new()
        })
    });
    let started = std::time::Instant::now();
    let go = || registry.run_with_env(&spec, parsed.scale, parsed.threads, &env);
    let result = match &collector {
        Some(collector) => carma_trace::with_collector(collector, go),
        None => go(),
    };
    let wall_s = started.elapsed().as_secs_f64();
    let mut report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(collector) = &collector {
        let trace = collector.snapshot();
        report.provenance = Some(carma_core::Provenance {
            wall_s,
            threads: parsed.threads.unwrap_or_else(carma_exec::current_threads),
            build: carma_trace::build_info(),
            memo: env.memo_stats(),
            spans: trace
                .span_totals()
                .into_iter()
                .map(|(name, count, total_ns)| carma_core::SpanTotal {
                    name: name.to_string(),
                    count,
                    total_s: total_ns as f64 / 1e9,
                })
                .collect(),
        });
        if let Some(sink) = parsed.trace {
            let payload = match sink {
                TraceSink::Text => trace.text_profile(),
                TraceSink::Chrome => trace.chrome_json(),
                TraceSink::Json => {
                    let mut json = report
                        .provenance
                        .as_ref()
                        .expect("provenance attached above")
                        .to_json();
                    json.push('\n');
                    json
                }
            };
            match &parsed.trace_out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, payload) {
                        eprintln!("error: cannot write `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("(trace written to {path})");
                }
                None => eprint!("{payload}"),
            }
        }
    }

    if parsed.memo_stats {
        if let Some(stats) = env.memo_stats() {
            for stage in carma_core::MemoStage::ALL {
                let c = stats.stage(stage);
                eprintln!(
                    "memo {}: hits={} misses={} disk_hits={}",
                    stage.as_str(),
                    c.hits,
                    c.misses,
                    c.disk_hits
                );
            }
        }
    }

    let payload = match parsed.out {
        OutFormat::Text => format!("{}{}", report.tables_text(), report.notes_text()),
        OutFormat::Json => {
            let mut json = report.to_json();
            json.push('\n');
            json
        }
        OutFormat::Csv => report.to_csv(),
    };
    match parsed.output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, payload) {
                eprintln!("error: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("(written to {path})");
        }
        None => print!("{payload}"),
    }
    ExitCode::SUCCESS
}
