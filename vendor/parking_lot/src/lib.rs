//! Vendored, dependency-free lock shim with `parking_lot`-style
//! ergonomics: `lock()` returns the guard directly (no poison
//! `Result`); a poisoned std lock is transparently recovered, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{self, TryLockError};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires
    /// exclusive access, so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
