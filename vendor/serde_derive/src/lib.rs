//! Vendored `#[derive(Serialize)]` implemented directly on
//! `proc_macro` token streams (no `syn`/`quote` — the build is
//! offline).
//!
//! Supported shape: non-generic structs with named fields. Field
//! attribute `#[serde(serialize_with = "path")]` routes one field
//! through a custom `fn(&T, S) -> Result<S::Ok, S::Error>`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    ty: String,
    serialize_with: Option<String>,
}

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility / qualifiers
    // until the `struct` keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [group]
            TokenTree::Ident(id) if id.to_string() == "struct" => break,
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(
                    "derive(Serialize) shim supports structs with named fields only".to_string(),
                )
            }
            _ => i += 1,
        }
    }
    if i >= tokens.len() {
        return Err("derive(Serialize): no `struct` keyword found".to_string());
    }
    i += 1; // past `struct`

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Serialize): missing struct name".to_string()),
    };
    i += 1;

    // Find the brace-delimited field group (rejecting generics for
    // simplicity — nothing in the workspace derives on generic rows).
    let fields_group = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("derive(Serialize) shim does not support generic structs".to_string())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("derive(Serialize) shim does not support tuple structs".to_string())
            }
            Some(_) => i += 1,
            None => {
                return Err("derive(Serialize): struct body not found".to_string());
            }
        }
    };

    let fields = parse_fields(fields_group)?;
    Ok(render(&name, &fields))
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;

    while i < tokens.len() {
        let mut serialize_with = None;

        // Attributes before the field (doc comments and serde attrs).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if let Some(sw) = extract_serialize_with(&g.stream()) {
                    serialize_with = Some(sw);
                }
            }
            i += 2;
        }

        // Optional visibility: `pub` or `pub(...)`.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }

        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            Some(other) => {
                return Err(format!(
                    "derive(Serialize): expected field name, found {other}"
                ))
            }
        };
        i += 1;

        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "derive(Serialize): expected `:` after field `{name}`"
                ))
            }
        }

        // Type: everything until a top-level comma. `<` / `>` do not
        // appear as groups, so track angle-bracket depth manually.
        let mut ty = String::new();
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Punct(p) => {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                    ty.push(p.as_char());
                }
                other => {
                    if !ty.is_empty() && !ty.ends_with('<') && !ty.ends_with(':') {
                        ty.push(' ');
                    }
                    ty.push_str(&other.to_string());
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)

        fields.push(Field {
            name,
            ty,
            serialize_with,
        });
    }

    Ok(fields)
}

/// Looks for `serde(serialize_with = "path")` inside one attribute's
/// bracket group.
fn extract_serialize_with(stream: &TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                if let TokenTree::Ident(key) = &inner[j] {
                    if key.to_string() == "serialize_with" {
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (inner.get(j + 1), inner.get(j + 2))
                        {
                            if eq.as_char() == '=' {
                                let s = lit.to_string();
                                return Some(s.trim_matches('"').to_string());
                            }
                        }
                    }
                }
                j += 1;
            }
            None
        }
        _ => None,
    }
}

fn render(name: &str, fields: &[Field]) -> TokenStream {
    let mut body = String::new();
    let mut wrappers = String::new();

    for (idx, f) in fields.iter().enumerate() {
        match &f.serialize_with {
            None => {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{0}\", &self.{0})?;\n",
                    f.name
                ));
            }
            Some(path) => {
                let wrapper = format!("__SerializeWith{idx}");
                wrappers.push_str(&format!(
                    "struct {wrapper}<'a>(&'a {ty});\n\
                     impl<'a> ::serde::Serialize for {wrapper}<'a> {{\n\
                         fn serialize<S: ::serde::Serializer>(&self, __s: S) -> ::core::result::Result<S::Ok, S::Error> {{\n\
                             {path}(self.0, __s)\n\
                         }}\n\
                     }}\n",
                    ty = f.ty,
                ));
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{0}\", &{wrapper}(&self.{0}))?;\n",
                    f.name
                ));
            }
        }
    }

    let out = format!(
        "const _: () = {{\n\
             {wrappers}\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, __serializer: S) -> ::core::result::Result<S::Ok, S::Error> {{\n\
                     let mut __state = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {len})?;\n\
                     {body}\n\
                     ::serde::ser::SerializeStruct::end(__state)\n\
                 }}\n\
             }}\n\
         }};",
        len = fields.len(),
    );

    out.parse()
        .expect("derive(Serialize) shim produced invalid Rust")
}
