//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! implemented directly on `proc_macro` token streams (no `syn` /
//! `quote` — the build is offline).
//!
//! Supported shape: non-generic structs with named fields. Field
//! attributes:
//!
//! * `#[serde(serialize_with = "path")]` routes one field through a
//!   custom `fn(&T, S) -> Result<S::Ok, S::Error>` (Serialize only);
//! * `#[serde(default)]` makes a field optional on deserialization,
//!   filling it from `Default::default()` when absent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    ty: String,
    serialize_with: Option<String>,
    has_default: bool,
}

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_struct(input, "Serialize") {
        Ok((name, fields)) => render_serialize(&name, &fields),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives `serde::de::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_struct(input, "Deserialize") {
        Ok((name, fields)) => render_deserialize(&name, &fields),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn parse_struct(input: TokenStream, which: &str) -> Result<(String, Vec<Field>), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility / qualifiers
    // until the `struct` keyword.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [group]
            TokenTree::Ident(id) if id.to_string() == "struct" => break,
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(format!(
                    "derive({which}) shim supports structs with named fields only"
                ))
            }
            _ => i += 1,
        }
    }
    if i >= tokens.len() {
        return Err(format!("derive({which}): no `struct` keyword found"));
    }
    i += 1; // past `struct`

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err(format!("derive({which}): missing struct name")),
    };
    i += 1;

    // Find the brace-delimited field group (rejecting generics for
    // simplicity — nothing in the workspace derives on generic rows).
    let fields_group = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "derive({which}) shim does not support generic structs"
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "derive({which}) shim does not support tuple structs"
                ))
            }
            Some(_) => i += 1,
            None => {
                return Err(format!("derive({which}): struct body not found"));
            }
        }
    };

    let fields = parse_fields(fields_group, which)?;
    Ok((name, fields))
}

fn parse_fields(stream: TokenStream, which: &str) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;

    while i < tokens.len() {
        let mut serialize_with = None;
        let mut has_default = false;

        // Attributes before the field (doc comments and serde attrs).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let attr = parse_serde_attr(&g.stream());
                if let Some(sw) = attr.serialize_with {
                    serialize_with = Some(sw);
                }
                has_default |= attr.default;
            }
            i += 2;
        }

        // Optional visibility: `pub` or `pub(...)`.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }

        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            Some(other) => {
                return Err(format!(
                    "derive({which}): expected field name, found {other}"
                ))
            }
        };
        i += 1;

        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "derive({which}): expected `:` after field `{name}`"
                ))
            }
        }

        // Type: everything until a top-level comma. `<` / `>` do not
        // appear as groups, so track angle-bracket depth manually.
        let mut ty = String::new();
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Punct(p) => {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        _ => {}
                    }
                    ty.push(p.as_char());
                }
                other => {
                    if !ty.is_empty() && !ty.ends_with('<') && !ty.ends_with(':') {
                        ty.push(' ');
                    }
                    ty.push_str(&other.to_string());
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)

        fields.push(Field {
            name,
            ty,
            serialize_with,
            has_default,
        });
    }

    Ok(fields)
}

#[derive(Default)]
struct SerdeAttr {
    serialize_with: Option<String>,
    default: bool,
}

/// Looks for `serde(serialize_with = "path")` / `serde(default)`
/// inside one attribute's bracket group.
fn parse_serde_attr(stream: &TokenStream) -> SerdeAttr {
    let mut out = SerdeAttr::default();
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                if let TokenTree::Ident(key) = &inner[j] {
                    match key.to_string().as_str() {
                        "serialize_with" => {
                            if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                                (inner.get(j + 1), inner.get(j + 2))
                            {
                                if eq.as_char() == '=' {
                                    let s = lit.to_string();
                                    out.serialize_with = Some(s.trim_matches('"').to_string());
                                }
                            }
                        }
                        "default" => out.default = true,
                        _ => {}
                    }
                }
                j += 1;
            }
        }
        _ => {}
    }
    out
}

fn render_serialize(name: &str, fields: &[Field]) -> TokenStream {
    let mut body = String::new();
    let mut wrappers = String::new();

    for (idx, f) in fields.iter().enumerate() {
        match &f.serialize_with {
            None => {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{0}\", &self.{0})?;\n",
                    f.name
                ));
            }
            Some(path) => {
                let wrapper = format!("__SerializeWith{idx}");
                wrappers.push_str(&format!(
                    "struct {wrapper}<'a>(&'a {ty});\n\
                     impl<'a> ::serde::Serialize for {wrapper}<'a> {{\n\
                         fn serialize<S: ::serde::Serializer>(&self, __s: S) -> ::core::result::Result<S::Ok, S::Error> {{\n\
                             {path}(self.0, __s)\n\
                         }}\n\
                     }}\n",
                    ty = f.ty,
                ));
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{0}\", &{wrapper}(&self.{0}))?;\n",
                    f.name
                ));
            }
        }
    }

    let out = format!(
        "const _: () = {{\n\
             {wrappers}\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, __serializer: S) -> ::core::result::Result<S::Ok, S::Error> {{\n\
                     let mut __state = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {len})?;\n\
                     {body}\n\
                     ::serde::ser::SerializeStruct::end(__state)\n\
                 }}\n\
             }}\n\
         }};",
        len = fields.len(),
    );

    out.parse()
        .expect("derive(Serialize) shim produced invalid Rust")
}

fn render_deserialize(name: &str, fields: &[Field]) -> TokenStream {
    // Unknown-key guard: every present key must name a known field.
    let known_pattern = fields
        .iter()
        .map(|f| format!("\"{}\"", f.name))
        .collect::<Vec<_>>()
        .join(" | ");
    let known_list = fields
        .iter()
        .map(|f| format!("\"{}\"", f.name))
        .collect::<Vec<_>>()
        .join(", ");
    let unknown_guard = if fields.is_empty() {
        format!(
            "if let ::core::option::Option::Some((__key, _)) = __members.first() {{\n\
                 return ::core::result::Result::Err(\
                     ::serde::de::Error::unknown_field(__key, \"{name}\", &[]));\n\
             }}\n"
        )
    } else {
        format!(
            "for (__key, _) in __members.iter() {{\n\
                 match __key.as_str() {{\n\
                     {known_pattern} => {{}}\n\
                     __other => return ::core::result::Result::Err(\
                         ::serde::de::Error::unknown_field(__other, \"{name}\", &[{known_list}])),\n\
                 }}\n\
             }}\n"
        )
    };

    let mut inits = String::new();
    for f in fields {
        let missing = if f.has_default {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return ::core::result::Result::Err(\
                     ::serde::de::Error::missing_field(\"{0}\", \"{name}\"))",
                f.name
            )
        };
        inits.push_str(&format!(
            "{0}: match __members.iter().find(|(__k, _)| __k == \"{0}\") {{\n\
                 ::core::option::Option::Some((_, __v)) => \
                     ::serde::de::Deserialize::deserialize(__v)\
                         .map_err(|__e| __e.in_field(\"{0}\"))?,\n\
                 ::core::option::Option::None => {missing},\n\
             }},\n",
            f.name
        ));
    }

    let out = format!(
        "const _: () = {{\n\
             impl ::serde::de::Deserialize for {name} {{\n\
                 fn deserialize(__value: &::serde::json::Value) -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                     let __members = match __value {{\n\
                         ::serde::json::Value::Object(__m) => __m,\n\
                         _ => return ::core::result::Result::Err(\
                             ::serde::de::Error::new(\"{name}: expected a JSON object\")),\n\
                     }};\n\
                     {unknown_guard}\n\
                     ::core::result::Result::Ok({name} {{\n\
                         {inits}\n\
                     }})\n\
                 }}\n\
             }}\n\
         }};"
    );

    out.parse()
        .expect("derive(Deserialize) shim produced invalid Rust")
}
