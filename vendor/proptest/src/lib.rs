//! Vendored, dependency-free property-testing shim exposing the
//! `proptest`-shaped surface the CARMA workspace uses: the
//! [`proptest!`] / [`prop_compose!`] macros, range/tuple/vec
//! strategies, `prop_assert*`, and [`test_runner::Config`].
//!
//! Unlike upstream proptest it is **deterministic by construction**:
//! every test derives its RNG seed from its own name (FNV-1a hash), so
//! CI runs are reproducible with no `proptest-regressions` files. Set
//! `PROPTEST_CASES` to scale the per-test case count (e.g. `=8` for a
//! quick smoke run); explicit `ProptestConfig::with_cases` values are
//! still honoured as upper bounds of work, capped by the env override.
//! There is no shrinking — failures print the offending inputs via the
//! panic message instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;` — everything a property test needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn holds(x in 0u32..100, y in 0u32..100) {
///         prop_assert!(x + y < 200);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __cases = __config.effective_cases();
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    let __case_info = format!(
                        concat!("[", stringify!($name), " case {}/{}: ",
                            $(stringify!($arg), " = {:?} "),+ , "]"),
                        __case + 1, __cases, $(&$arg),+
                    );
                    let __run = || -> ::std::result::Result<(), String> { $body Ok(()) };
                    if let Err(__msg) = __run() {
                        panic!("property failed {}: {}", __case_info, __msg);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Defines a named composite strategy as a function returning
/// `impl Strategy`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $v:vis fn $name:ident ()
        ( $($arg:ident in $strat:expr),+ $(,)? ) -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $v fn $name() -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::FnStrategy::new(move |__rng: &mut $crate::test_runner::TestRng| {
                $( let $arg = $crate::strategy::Strategy::sample(&($strat), __rng); )+
                $body
            })
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, reporting the
/// sampled inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        /// A pair whose second element is at least the first.
        fn ordered_pair()(a in 0u32..100, b in 0u32..100) -> (u32, u32) {
            if a <= b { (a, b) } else { (b, a) }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in -4i32..=4, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u32..10, 0usize..3), 0..6)) {
            prop_assert!(v.len() < 6);
            for (a, b) in &v {
                prop_assert!(*a < 10 && *b < 3);
            }
        }

        #[test]
        fn composed(p in ordered_pair()) {
            prop_assert!(p.0 <= p.1);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 5);
            prop_assert_ne!(x, 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0u64..1_000_000;
        assert_eq!(s.clone().sample(&mut a), s.sample(&mut b));
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
