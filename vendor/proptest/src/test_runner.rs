//! Test configuration and the deterministic RNG driving case
//! generation.

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run for each property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override (an upper bound, so CI can force quick runs).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream proptest defaults to 256; the shim picks a smaller
        // default so the full workspace suite stays well under the
        // 2-minute budget.
        Config { cases: 32 }
    }
}

/// Deterministic splitmix64 generator; the seed is the FNV-1a hash of
/// the fully qualified test name, so every test has a stable but
/// distinct stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is empty");
        self.next_u64() % bound
    }
}
