//! Value-generation strategies: ranges, tuples, constants, closures
//! and `map`.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy built from a sampling closure (used by `prop_compose!`).
pub struct FnStrategy<F> {
    f: F,
}

impl<F> FnStrategy<F> {
    /// Wraps a sampling closure.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_strategy_range_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_strategy_range_uint!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            return rng.next_u64();
        }
        lo + rng.below(span)
    }
}

macro_rules! impl_strategy_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = ((self.end as i64) - (self.start as i64)) as u64;
                ((self.start as i64) + rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi as i64) - (lo as i64) + 1) as u64;
                ((lo as i64) + rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_strategy_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_strategy_range_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
impl_strategy_range_float!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+ );)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.sample(rng), )+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}
