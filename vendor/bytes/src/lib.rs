//! Vendored, dependency-free byte-buffer shim exposing the
//! `bytes`-shaped API the CARMA workspace uses: [`Bytes`] /
//! [`BytesMut`] with the [`Buf`] / [`BufMut`] cursor traits. Backed by
//! `Arc<[u8]>` + offsets, so `clone` and `slice` are cheap like
//! upstream.

use std::ops::{Deref, Index, RangeBounds};
use std::sync::Arc;

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let c = self.chunk();
        assert!(c.len() >= 4, "buffer underflow");
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let c = self.chunk();
        assert!(c.len() >= 8, "buffer underflow");
        let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let c = self.chunk();
        assert!(!c.is_empty(), "buffer underflow");
        let v = c[0];
        self.advance(1);
        v
    }
}

/// Write-side cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// Cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the (remaining) buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a zero-copy sub-buffer over `range` (relative to the
    /// current view).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl<R: RangeBounds<usize> + std::slice::SliceIndex<[u8], Output = [u8]>> Index<R> for Bytes {
    type Output = [u8];
    fn index(&self, index: R) -> &[u8] {
        &self.as_slice()[index]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"MAGC");
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_u8(3);
        let mut b = buf.freeze();
        assert_eq!(&b[0..4], b"MAGC");
        b.advance(4);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_u8(), 3);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2.as_slice(), &[3, 4]);
        assert_eq!(b.len(), 6);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
