//! Serialization traits, mirroring the subset of `serde::ser` the
//! workspace needs: scalar methods, structs, and sequences.

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the workspace's data structures.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;
    /// Sub-serializer for struct fields.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for sequence elements.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit / null value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_unit()
    }
    /// Serializes `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        value.serialize(self)
    }
    /// Begins serializing a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins serializing a sequence of (optionally known) length.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
}

/// Returned from [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.to_string())
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}
