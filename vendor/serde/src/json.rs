//! A concrete JSON serializer and parser (`serde_json`-shaped
//! `to_string` / `from_str` / [`Value`] entry points) for exporting
//! experiment rows and loading scenario specs back.

use crate::de::Deserialize;
use crate::ser::{Serialize, SerializeSeq, SerializeStruct, Serializer};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    match value.serialize(JsonSerializer { out: &mut out }) {
        Ok(()) => {}
        Err(e) => match e {},
    }
    out
}

/// The never-failing JSON error type (writes to an in-memory string).
#[derive(Debug)]
pub enum Never {}

struct JsonSerializer<'a> {
    out: &'a mut String,
}

fn push_json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = Never;
    type SerializeStruct = JsonStruct<'a>;
    type SerializeSeq = JsonSeq<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Never> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Never> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Never> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Never> {
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Never> {
        push_json_str(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Never> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<JsonStruct<'a>, Never> {
        self.out.push('{');
        Ok(JsonStruct {
            out: self.out,
            first: true,
        })
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeq<'a>, Never> {
        self.out.push('[');
        Ok(JsonSeq {
            out: self.out,
            first: true,
        })
    }
}

/// In-progress JSON object.
pub struct JsonStruct<'a> {
    out: &'a mut String,
    first: bool,
}

impl SerializeStruct for JsonStruct<'_> {
    type Ok = ();
    type Error = Never;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Never> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_json_str(self.out, key);
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), Never> {
        self.out.push('}');
        Ok(())
    }
}

/// In-progress JSON array.
pub struct JsonSeq<'a> {
    out: &'a mut String,
    first: bool,
}

impl SerializeSeq for JsonSeq<'_> {
    type Ok = ();
    type Error = Never;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Never> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), Never> {
        self.out.push(']');
        Ok(())
    }
}

/// A parsed JSON document. Object member order is preserved (members
/// are a vector, not a map), which keeps round-trips stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers are exact to 2⁵³).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered `(key, value)` members.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A JSON syntax error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Error of [`from_str`]: either the text is not JSON, or the JSON
/// does not match the target type.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The input is not syntactically valid JSON.
    Parse(ParseError),
    /// The JSON value does not deserialize into the requested type.
    De(crate::de::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(e) => e.fmt(f),
            Error::De(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {}

/// Parses `text` into a [`Value`] tree, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON document"));
    }
    Ok(value)
}

/// Parses `text` and deserializes it into `T`
/// (`serde_json::from_str`-shaped entry point).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text).map_err(Error::Parse)?;
    T::deserialize(&value).map_err(Error::De)
}

/// Nesting depth cap — recursion guard for adversarial inputs.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number span");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::{from_str, parse, to_string, Value};

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -2.5e1 ").unwrap(), Value::Number(-25.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u00e9\"").unwrap(),
            Value::String("a\n\"bé".to_string())
        );
    }

    #[test]
    fn parses_containers() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":1,\"a\":2}").is_err(), "duplicate keys");
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn rejects_malformed_surrogates_without_panicking() {
        // High surrogate followed by a non-low-surrogate escape used to
        // underflow `lo - 0xDC00`; all of these must be clean errors.
        assert!(parse("\"\\ud800\\u0041\"").is_err());
        assert!(parse("\"\\ud800\"").is_err());
        assert!(parse("\"\\udc00\"").is_err(), "lone low surrogate");
        // A well-formed pair still decodes.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".to_string())
        );
    }

    #[test]
    fn serializer_output_reparses() {
        let json = to_string(&vec![0.5f64, 1.5]);
        assert_eq!(
            parse(&json).unwrap(),
            Value::Array(vec![Value::Number(0.5), Value::Number(1.5)])
        );
    }

    #[test]
    fn from_str_typed() {
        assert_eq!(from_str::<Vec<u32>>("[1,2,3]").unwrap(), vec![1, 2, 3]);
        assert!(from_str::<Vec<u32>>("[1,-2]").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }

    #[test]
    fn scalars() {
        assert_eq!(to_string(&1u32), "1");
        assert_eq!(to_string(&-3i64), "-3");
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&2.5f64), "2.5");
        assert_eq!(to_string("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn sequences() {
        assert_eq!(to_string(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(to_string(&Vec::<u8>::new()), "[]");
        assert_eq!(to_string(&[0.5f64, 1.5]), "[0.5,1.5]");
    }

    #[test]
    fn options() {
        assert_eq!(to_string(&Some(4u8)), "4");
        assert_eq!(to_string(&Option::<u8>::None), "null");
    }
}
