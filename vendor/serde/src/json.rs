//! A concrete JSON serializer for exporting experiment rows
//! (`serde_json::to_string`-shaped entry point).

use crate::ser::{Serialize, SerializeSeq, SerializeStruct, Serializer};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    match value.serialize(JsonSerializer { out: &mut out }) {
        Ok(()) => {}
        Err(e) => match e {},
    }
    out
}

/// The never-failing JSON error type (writes to an in-memory string).
#[derive(Debug)]
pub enum Never {}

struct JsonSerializer<'a> {
    out: &'a mut String,
}

fn push_json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = Never;
    type SerializeStruct = JsonStruct<'a>;
    type SerializeSeq = JsonSeq<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Never> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Never> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Never> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Never> {
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Never> {
        push_json_str(self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Never> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<JsonStruct<'a>, Never> {
        self.out.push('{');
        Ok(JsonStruct {
            out: self.out,
            first: true,
        })
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeq<'a>, Never> {
        self.out.push('[');
        Ok(JsonSeq {
            out: self.out,
            first: true,
        })
    }
}

/// In-progress JSON object.
pub struct JsonStruct<'a> {
    out: &'a mut String,
    first: bool,
}

impl SerializeStruct for JsonStruct<'_> {
    type Ok = ();
    type Error = Never;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Never> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_json_str(self.out, key);
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), Never> {
        self.out.push('}');
        Ok(())
    }
}

/// In-progress JSON array.
pub struct JsonSeq<'a> {
    out: &'a mut String,
    first: bool,
}

impl SerializeSeq for JsonSeq<'_> {
    type Ok = ();
    type Error = Never;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Never> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(JsonSerializer { out: self.out })
    }

    fn end(self) -> Result<(), Never> {
        self.out.push(']');
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::to_string;

    #[test]
    fn scalars() {
        assert_eq!(to_string(&1u32), "1");
        assert_eq!(to_string(&-3i64), "-3");
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&2.5f64), "2.5");
        assert_eq!(to_string("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn sequences() {
        assert_eq!(to_string(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(to_string(&Vec::<u8>::new()), "[]");
        assert_eq!(to_string(&[0.5f64, 1.5]), "[0.5,1.5]");
    }

    #[test]
    fn options() {
        assert_eq!(to_string(&Some(4u8)), "4");
        assert_eq!(to_string(&Option::<u8>::None), "null");
    }
}
