//! Value-based deserialization, mirroring the subset of `serde::de`
//! the workspace needs: a [`Deserialize`] trait driven by a parsed
//! [`Value`](crate::json::Value) tree (scalars, options, sequences and
//! — via `#[derive(Deserialize)]` — named-field structs).

use crate::json::Value;

/// A deserialization error with enough context to point at the
/// offending field (`field \`ga.population\`: expected a number`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    path: Vec<String>,
}

impl Error {
    /// Creates an error from a free-form message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            path: Vec::new(),
        }
    }

    /// The error for a field name that is not part of the struct.
    pub fn unknown_field(field: &str, strukt: &str, expected: &[&str]) -> Self {
        if expected.is_empty() {
            Error::new(format!("unknown field `{field}` in {strukt}"))
        } else {
            Error::new(format!(
                "unknown field `{field}` in {strukt} (expected one of: {})",
                expected.join(", ")
            ))
        }
    }

    /// The error for a required field that is absent from the input.
    pub fn missing_field(field: &str, strukt: &str) -> Self {
        Error::new(format!("missing required field `{field}` in {strukt}"))
    }

    /// Returns the error with `field` prepended to its path, so nested
    /// failures read `field \`ga.population\`: …`.
    #[must_use]
    pub fn in_field(mut self, field: &str) -> Self {
        self.path.insert(0, field.to_string());
        self
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "field `{}`: {}", self.path.join("."), self.msg)
        }
    }
}

impl std::error::Error for Error {}

/// A data structure that can be reconstructed from a parsed JSON
/// [`Value`]. Implemented for scalars, `String`, `Option<T>` and
/// `Vec<T>`; derive it on named-field structs with
/// `#[derive(Deserialize)]`.
pub trait Deserialize: Sized {
    /// Builds `Self` from `value`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

fn expected(what: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Number(_) => "a number",
        Value::String(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    };
    Error::new(format!("expected {what}, found {kind}"))
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(expected("a boolean", other)),
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(*n),
            other => Err(expected("a number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(expected("a string", other)),
        }
    }
}

/// Integral JSON numbers survive an f64 round-trip exactly up to 2⁵³.
const MAX_SAFE_INTEGER: f64 = 9_007_199_254_740_992.0;

fn integral(value: &Value) -> Result<f64, Error> {
    let n = f64::deserialize(value)?;
    if n.fract() != 0.0 || !n.is_finite() || n.abs() > MAX_SAFE_INTEGER {
        return Err(Error::new(format!("expected an integer, found {n}")));
    }
    Ok(n)
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = integral(value)?;
                if n < 0.0 || n > <$t>::MAX as f64 {
                    return Err(Error::new(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = integral(value)?;
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::new(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| T::deserialize(v).map_err(|e| e.in_field(&format!("[{i}]"))))
                .collect(),
            other => Err(expected("an array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn scalars_deserialize() {
        assert_eq!(bool::deserialize(&json::parse("true").unwrap()), Ok(true));
        assert_eq!(f64::deserialize(&json::parse("2.5").unwrap()), Ok(2.5));
        assert_eq!(u64::deserialize(&json::parse("42").unwrap()), Ok(42));
        assert_eq!(i32::deserialize(&json::parse("-7").unwrap()), Ok(-7));
        assert_eq!(
            String::deserialize(&json::parse("\"hi\"").unwrap()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn integer_range_checked() {
        assert!(u8::deserialize(&json::parse("300").unwrap()).is_err());
        assert!(u64::deserialize(&json::parse("-1").unwrap()).is_err());
        assert!(u64::deserialize(&json::parse("1.5").unwrap()).is_err());
    }

    #[test]
    fn options_and_vecs() {
        assert_eq!(
            Option::<u8>::deserialize(&json::parse("null").unwrap()),
            Ok(None)
        );
        assert_eq!(
            Option::<u8>::deserialize(&json::parse("4").unwrap()),
            Ok(Some(4))
        );
        assert_eq!(
            Vec::<f64>::deserialize(&json::parse("[0.5, 1.5]").unwrap()),
            Ok(vec![0.5, 1.5])
        );
        let err = Vec::<f64>::deserialize(&json::parse("[1, \"x\"]").unwrap()).unwrap_err();
        assert!(err.to_string().contains("[1]"), "{err}");
    }

    #[test]
    fn error_paths_compose() {
        let e = Error::new("boom").in_field("population").in_field("ga");
        assert_eq!(e.to_string(), "field `ga.population`: boom");
    }
}
