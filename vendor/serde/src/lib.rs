//! Vendored, dependency-free serialization shim exposing the
//! `serde`-shaped API surface the CARMA workspace uses: the
//! [`Serialize`] / [`Serializer`] traits, a `#[derive(Serialize)]`
//! proc-macro (re-exported from `serde_derive`), and a concrete JSON
//! writer in [`json`] so experiment rows can be exported.

pub use serde_derive::Serialize;

pub mod ser;

pub use ser::{Serialize, Serializer};

pub mod json;
