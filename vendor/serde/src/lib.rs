//! Vendored, dependency-free serialization shim exposing the
//! `serde`-shaped API surface the CARMA workspace uses: the
//! [`Serialize`] / [`Serializer`] traits, a value-based
//! [`Deserialize`](de::Deserialize) trait, `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` proc-macros (re-exported from
//! `serde_derive`), and a concrete JSON reader/writer in [`json`] so
//! experiment rows can be exported and scenario specs loaded back.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};

pub mod json;
