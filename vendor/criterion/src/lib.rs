//! Vendored, dependency-free benchmark harness exposing the
//! `criterion`-shaped API the CARMA benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! `Throughput`). Timing is a simple calibrated loop printing
//! `name ... time/iter`; statistical analysis is out of scope.
//!
//! Running with `--test` (as `cargo test --benches` does) executes
//! every closure once and skips timing, so benches double as smoke
//! tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of one benchmark, for deriving rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    /// Target measurement time per benchmark.
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var("CARMA_BENCH_TEST_MODE").is_ok();
        Criterion {
            test_mode,
            measure: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(&id.into(), None, self.test_mode, self.measure, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the declared per-iteration throughput for subsequent
    /// benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes its measurement
    /// loop by time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measure = time.min(Duration::from_secs(1));
        self
    }

    /// Registers and immediately runs one benchmark within the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(
            &full,
            self.throughput,
            self.criterion.test_mode,
            self.criterion.measure,
            f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the measured routine.
pub struct Bencher {
    test_mode: bool,
    measure: Duration,
    /// (total time, iterations) recorded by the last `iter` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        // Calibrate: run once to estimate per-iteration cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let iters = (self.measure.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    measure: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        test_mode,
        measure,
        result: None,
    };
    f(&mut bencher);
    if test_mode {
        println!("bench {name}: ok (test mode)");
        return;
    }
    match bencher.result {
        Some((total, iters)) if iters > 0 => {
            let per_iter = total.as_secs_f64() / iters as f64;
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => format!(", {:.3e} elem/s", n as f64 / per_iter),
                Throughput::Bytes(n) => format!(", {:.3e} B/s", n as f64 / per_iter),
            });
            println!(
                "bench {name}: {:.3} µs/iter ({iters} iters){}",
                per_iter * 1e6,
                rate.unwrap_or_default()
            );
        }
        _ => println!("bench {name}: no measurement recorded"),
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        std::env::set_var("CARMA_BENCH_TEST_MODE", "1");
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_runs_closures() {
        std::env::set_var("CARMA_BENCH_TEST_MODE", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4)).sample_size(10);
        let mut ran = false;
        group.bench_function(String::from("inner"), |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
