//! Vendored, dependency-free RNG shim for the CARMA workspace.
//!
//! The build environment has no network access, so this crate supplies
//! the small slice of a `rand`-style API the workspace actually uses:
//!
//! * [`Rng`] — dyn-compatible core trait (`next_u64`), so problem
//!   traits can take `&mut dyn Rng`;
//! * [`RngExt`] — blanket extension with the generic conveniences
//!   (`random_range`, `random_bool`, `random`);
//! * [`SeedableRng`] + [`rngs::StdRng`] — a deterministic xoshiro256++
//!   generator seeded via splitmix64.
//!
//! Everything is deterministic given a seed; there is no OS entropy
//! source on purpose (reproducible experiments are a project
//! requirement).

use std::ops::{Range, RangeInclusive};

/// Dyn-compatible random-number source: everything is derived from
/// `next_u64`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of
    /// [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A double in `[0, 1)` built from the top 53 bits of a `u64`.
#[inline]
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A float in `[0, 1)` built from the top 24 bits of a `u64`.
#[inline]
fn unit_f32<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Types samplable uniformly from the generator's full output
/// (`rng.random::<T>()`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

/// Ranges samplable via `rng.random_range(..)`.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64).wrapping_add(1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + $unit(rng) as $t * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                lo + $unit(rng) as $t * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f64, unit_f64; f32, unit_f32);

/// Generic conveniences layered over [`Rng`]; blanket-implemented so
/// they are available on `&mut dyn Rng` too.
pub trait RngExt: Rng {
    /// Draws one value uniformly from `range`.
    #[inline]
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// Draws one uniformly distributed `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256++ — fast, high-quality, deterministic; the
    /// workspace's standard generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Builds the generator from a full 256-bit state.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.random_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn works_through_dyn() {
        let mut rng = StdRng::seed_from_u64(9);
        let dynrng: &mut dyn Rng = &mut rng;
        let v = dynrng.random_range(0u32..10);
        assert!(v < 10);
        let _ = dynrng.random_bool(0.5);
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
